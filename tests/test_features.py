"""Unit tests for feature enumeration: paths, edge subsets/trees, cycles."""

import itertools

import networkx as nx
import pytest

from repro.features.cycles import enumerate_simple_cycles
from repro.features.paths import path_features
from repro.features.trees import connected_edge_subsets, enumerate_trees
from repro.graphs.graph import Graph

from testkit import cycle_graph, path_graph, random_graph, star_graph, to_networkx, triangle


class TestPathFeatures:
    def test_single_vertices_included(self):
        features = path_features(path_graph("AB"), 1)
        assert features[("A",)].count == 1
        assert features[("B",)].count == 1

    def test_single_vertices_can_be_excluded(self):
        features = path_features(path_graph("AB"), 1, include_vertices=False)
        assert ("A",) not in features

    def test_edge_counted_from_both_ends(self):
        features = path_features(path_graph("AB"), 1)
        assert features[("A", "B")].count == 2

    def test_counts_on_small_path(self):
        features = path_features(path_graph("COC"), 2)
        assert features[("C", "O")].count == 4  # 2 instances x 2 directions
        assert features[("C", "O", "C")].count == 2

    def test_starts_recorded(self):
        features = path_features(path_graph("AB"), 1)
        assert features[("A", "B")].starts == {0, 1}

    def test_max_edges_zero_gives_vertices_only(self):
        features = path_features(triangle("ABC"), 0)
        assert set(features) == {("A",), ("B",), ("C",)}

    def test_simple_paths_only(self):
        # In a triangle, no path feature revisits a vertex: the longest
        # simple path has 2 edges.
        features = path_features(triangle("AAA"), 5)
        longest = max(len(label) for label in features)
        assert longest == 3

    def test_max_edges_respected(self):
        features = path_features(path_graph("ABCDE"), 2)
        assert all(len(label) <= 3 for label in features)

    def test_negative_max_edges_rejected(self):
        with pytest.raises(ValueError):
            path_features(path_graph("AB"), -1)

    def test_path_count_matches_brute_force(self, rng):
        for _ in range(20):
            graph = random_graph(rng, 2, 6)
            features = path_features(graph, 3, include_vertices=False)
            total = sum(occ.count for occ in features.values())
            assert total == _count_directed_simple_paths(graph, 3)

    def test_monomorphic_count_dominance(self, rng):
        """If q is an induced subgraph of g, g's counts dominate q's —
        the soundness basis of GGSX/Grapes count filtering."""
        for _ in range(20):
            data = random_graph(rng, 3, 7, connected=True)
            vertices = sorted(rng.sample(range(data.order), 3))
            query, _ = data.induced_subgraph(vertices)
            query_features = path_features(query, 3)
            data_features = path_features(data, 3)
            for label, occurrences in query_features.items():
                assert label in data_features
                assert data_features[label].count >= occurrences.count


def _count_directed_simple_paths(graph: Graph, max_edges: int) -> int:
    count = 0
    for start in graph.vertices():
        stack = [(start, {start}, 0)]
        while stack:
            vertex, seen, depth = stack.pop()
            if depth == max_edges:
                continue
            for w in graph.neighbors(vertex):
                if w not in seen:
                    count += 1
                    stack.append((w, seen | {w}, depth + 1))
    return count


class TestConnectedEdgeSubsets:
    def test_exact_match_with_brute_force(self, rng):
        for _ in range(25):
            graph = random_graph(rng, 2, 6)
            ours = {frozenset(sub) for sub in connected_edge_subsets(graph, 3)}
            assert ours == _brute_connected_subsets(graph, 3)

    def test_no_duplicates(self, rng):
        for _ in range(15):
            graph = random_graph(rng, 2, 6)
            subsets = [frozenset(sub) for sub in connected_edge_subsets(graph, 4)]
            assert len(subsets) == len(set(subsets))

    def test_size_limit_respected(self):
        graph = cycle_graph("AAAAA")
        assert all(len(sub) <= 2 for sub in connected_edge_subsets(graph, 2))

    def test_zero_limit_yields_nothing(self):
        assert list(connected_edge_subsets(triangle(), 0)) == []

    def test_single_edges_enumerated(self):
        graph = path_graph("ABC")
        singles = [sub for sub in connected_edge_subsets(graph, 1)]
        assert sorted(singles) == [((0, 1),), ((1, 2),)]


def _brute_connected_subsets(graph: Graph, max_edges: int) -> set:
    edges = list(graph.edges())
    out = set()
    for k in range(1, max_edges + 1):
        for combo in itertools.combinations(edges, k):
            vertices = {v for e in combo for v in e}
            adjacency = {v: set() for v in vertices}
            for u, v in combo:
                adjacency[u].add(v)
                adjacency[v].add(u)
            start = next(iter(vertices))
            seen = {start}
            stack = [start]
            while stack:
                x = stack.pop()
                for y in adjacency[x]:
                    if y not in seen:
                        seen.add(y)
                        stack.append(y)
            if seen == vertices:
                out.add(frozenset(combo))
    return out


class TestTreeEnumeration:
    def test_all_results_are_trees(self, rng):
        for _ in range(15):
            graph = random_graph(rng, 3, 7)
            for edges in enumerate_trees(graph, 4):
                vertices = {v for e in edges for v in e}
                assert len(vertices) == len(edges) + 1

    def test_matches_filtered_subsets(self, rng):
        for _ in range(15):
            graph = random_graph(rng, 3, 6)
            trees = {frozenset(t) for t in enumerate_trees(graph, 3)}
            expected = {
                subset
                for subset in _brute_connected_subsets(graph, 3)
                if len({v for e in subset for v in e}) == len(subset) + 1
            }
            assert trees == expected

    def test_star_subtree_count(self):
        # Star K1,3: subtrees of size k = C(3, k).
        star = star_graph("C", "HHH")
        trees = list(enumerate_trees(star, 3))
        by_size = {}
        for t in trees:
            by_size[len(t)] = by_size.get(len(t), 0) + 1
        assert by_size == {1: 3, 2: 3, 3: 1}


class TestCycleEnumeration:
    @staticmethod
    def _edge_set(cycle):
        """A cycle's identity is its edge set (vertex sets can collide)."""
        return frozenset(
            frozenset((u, v)) for u, v in zip(cycle, cycle[1:] + type(cycle)(cycle[:1]))
        )

    def test_matches_networkx(self, rng):
        for _ in range(25):
            graph = random_graph(rng, 3, 7)
            ours = {self._edge_set(c) for c in enumerate_simple_cycles(graph, 7)}
            theirs = {
                self._edge_set(tuple(c))
                for c in nx.simple_cycles(to_networkx(graph))
                if len(c) >= 3
            }
            assert ours == theirs

    def test_each_cycle_once(self, rng):
        for _ in range(15):
            graph = random_graph(rng, 3, 7)
            cycles = [self._edge_set(c) for c in enumerate_simple_cycles(graph, 7)]
            assert len(cycles) == len(set(cycles))

    def test_length_limit(self):
        graph = cycle_graph("AAAAA")  # single 5-cycle
        assert list(enumerate_simple_cycles(graph, 4)) == []
        assert len(list(enumerate_simple_cycles(graph, 5))) == 1

    def test_triangle_found(self):
        cycles = list(enumerate_simple_cycles(triangle(), 3))
        assert len(cycles) == 1
        assert set(cycles[0]) == {0, 1, 2}

    def test_no_cycles_in_tree(self):
        assert list(enumerate_simple_cycles(star_graph("C", "HHH"), 6)) == []

    def test_limit_below_three_yields_nothing(self):
        assert list(enumerate_simple_cycles(triangle(), 2)) == []

    def test_k4_cycle_count(self):
        k4 = Graph("AAAA", [(i, j) for i in range(4) for j in range(i + 1, 4)])
        # K4 has 4 triangles and 3 four-cycles.
        cycles = list(enumerate_simple_cycles(k4, 4))
        assert sum(1 for c in cycles if len(c) == 3) == 4
        assert sum(1 for c in cycles if len(c) == 4) == 3
