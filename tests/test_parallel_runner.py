"""Sequential-equivalence harness for the parallel experiment engine.

The engine's contract (:mod:`repro.core.parallel`) is that fanning
(method × dataset) cells out to worker processes changes *nothing* about
the measured results: identical statuses, candidate/answer counts, FP
ratios, index sizes, build details, and identical ordering after the
deterministic merge — only wall-clock timings vary, as between any two
runs.  These tests hold that contract for every cell field, prove the
paper's three failure statuses survive the process boundary, and check
the pool really does dispatch work to multiple worker processes.

The suite relies on the fork start method (the runner's preference on
Linux) so monkeypatched registries and test-module functions are
visible inside workers.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.core.experiments import nodes_sweep
from repro.core.parallel import (
    ParallelRunner,
    PersistentPool,
    persistent_pool,
    run_cells,
)
from repro.core.presets import CI_PROFILE
from repro.core.runner import (
    STATUS_ERROR,
    STATUS_MEMORY,
    STATUS_OK,
    STATUS_TIMEOUT,
    CellTask,
    MethodCell,
    SizeStats,
    run_cell,
)
from repro.core.serialization import canonical_cell, canonical_sweep, sweep_to_json
from repro.core.metrics import WorkloadStats
from repro.generators.graphgen import GraphGenConfig, generate_dataset
from repro.generators.queries import generate_queries
from repro.indexes import ALL_INDEX_CLASSES
from repro.utils.budget import BudgetExceeded, MemoryBudgetExceeded

from testkit import ExplodingIndex

# Three real index methods (plus the naive baseline) with CI-scale
# settings; enough to cover trie, fingerprint, and spectral designs.
METHOD_CONFIGS = {
    "naive": None,
    "ggsx": {"max_path_edges": 2},
    "ctindex": {"fingerprint_bits": 256, "feature_edges": 3},
    "gcode": {"path_depth": 2, "top_eigenvalues": 2, "counter_buckets": 16},
}


@pytest.fixture(scope="module")
def dataset():
    config = GraphGenConfig(
        num_graphs=24, mean_nodes=10, mean_density=0.2, num_labels=4
    )
    return generate_dataset(config, seed=17)


@pytest.fixture(scope="module")
def workloads(dataset):
    return {
        3: generate_queries(dataset, 4, 3, seed=3),
        5: generate_queries(dataset, 3, 5, seed=5),
    }


def make_tasks(dataset, workloads, methods=METHOD_CONFIGS, **budgets):
    return [
        CellTask(
            key=("d0", method),
            method=method,
            dataset=dataset,
            workloads=workloads,
            method_config=config,
            **budgets,
        )
        for method, config in methods.items()
    ]


# ----------------------------------------------------------------------
# sequential ↔ parallel equivalence
# ----------------------------------------------------------------------


class TestEquivalence:
    def test_cells_identical_across_worker_counts(self, dataset, workloads):
        tasks = make_tasks(dataset, workloads)
        sequential = run_cells(tasks, jobs=1)
        parallel = run_cells(tasks, jobs=2)

        # Deterministic merge: same keys, same insertion order.
        assert list(sequential) == list(parallel) == [t.key for t in tasks]

        for key in sequential:
            seq, par = canonical_cell(sequential[key]), canonical_cell(parallel[key])
            assert seq == par, f"cell {key} differs between jobs=1 and jobs=2"
            assert par.build_status == STATUS_OK
            assert par.per_size and all(
                s.status == STATUS_OK for s in par.per_size.values()
            )

    def test_parallel_matches_direct_run_cell(self, dataset, workloads):
        """One worker hop changes nothing vs. calling run_cell inline."""
        task = make_tasks(dataset, workloads)[1]  # ggsx
        inline = run_cell(task)
        (outcome,) = ParallelRunner(jobs=2).run([task])
        assert canonical_cell(outcome.cell) == canonical_cell(inline)

    def test_sweep_serializes_byte_identical(self):
        """A whole sweep, canonicalized, is byte-identical across jobs."""
        from dataclasses import replace

        tiny = replace(
            CI_PROFILE,
            nodes_values=(8, 12),
            default_num_graphs=10,
            default_nodes=10,
            default_density=0.2,
            default_labels=3,
            query_sizes=(3, 5),
            queries_per_size=3,
            method_configs={
                name: config
                for name, config in METHOD_CONFIGS.items()
                if config is not None
            },
        )
        sequential = nodes_sweep(tiny, seed=3, jobs=1)
        parallel = nodes_sweep(tiny, seed=3, jobs=2)
        assert sweep_to_json(canonical_sweep(sequential)) == sweep_to_json(
            canonical_sweep(parallel)
        )
        assert list(sequential.cells) == list(parallel.cells)


# ----------------------------------------------------------------------
# failure statuses across the process boundary
# ----------------------------------------------------------------------


def _real_methods():
    return {k: v for k, v in METHOD_CONFIGS.items() if k != "naive"}


class TestFailureInjection:
    def test_timeout_status_survives_workers(self, dataset, workloads):
        tasks = make_tasks(
            dataset, workloads, methods=_real_methods(), build_budget_seconds=0.0
        )
        for key, cell in run_cells(tasks, jobs=2).items():
            assert cell.build_status == STATUS_TIMEOUT, key
            assert cell.build_seconds is None and not cell.per_size

    def test_memory_status_survives_workers(self, dataset, workloads):
        tasks = make_tasks(
            dataset, workloads, methods=_real_methods(), build_memory_bytes=1
        )
        for key, cell in run_cells(tasks, jobs=2).items():
            assert cell.build_status == STATUS_MEMORY, key

    def test_error_status_survives_workers(self, dataset, workloads, monkeypatch):
        # Registered under fork the workers inherit the patched registry.
        monkeypatch.setitem(ALL_INDEX_CLASSES, "exploding", ExplodingIndex)
        tasks = make_tasks(dataset, workloads, methods={"exploding": None})
        (cell,) = run_cells(tasks, jobs=2).values()
        assert cell.build_status == STATUS_ERROR
        assert "injected build failure" in cell.build_error

    def test_query_timeout_status_survives_workers(self, dataset, workloads):
        tasks = make_tasks(
            dataset, workloads, methods=_real_methods(), query_budget_seconds=0.0
        )
        for key, cell in run_cells(tasks, jobs=2).items():
            assert cell.build_status == STATUS_OK, key
            assert all(
                s.status == STATUS_TIMEOUT for s in cell.per_size.values()
            ), key

    def test_budget_exceptions_pickle(self):
        exc = pickle.loads(pickle.dumps(BudgetExceeded(1.5, "build")))
        assert exc.limit_seconds == 1.5 and exc.phase == "build"
        exc = pickle.loads(pickle.dumps(MemoryBudgetExceeded(64, 128, "build")))
        assert exc.limit_bytes == 64 and exc.observed_bytes == 128

    def test_result_types_pickle_roundtrip(self, dataset, workloads):
        cell = run_cell(make_tasks(dataset, workloads)[1])
        assert pickle.loads(pickle.dumps(cell)) == cell
        stats = WorkloadStats(2, 0.1, 0.05, 0.05, 3.0, 1.0, 0.5)
        assert pickle.loads(pickle.dumps(stats)) == stats
        size = SizeStats(status=STATUS_OK, stats=stats)
        assert pickle.loads(pickle.dumps(size)) == size

    def test_worker_programming_errors_propagate(self, dataset, workloads):
        """Unknown methods are caller bugs, not statuses — parallel runs
        raise exactly like sequential ones."""
        tasks = make_tasks(dataset, workloads, methods={"no_such_method": None})
        with pytest.raises(ValueError, match="unknown method"):
            run_cells(tasks, jobs=2)
        with pytest.raises(ValueError, match="unknown method"):
            run_cells(tasks, jobs=1)


# ----------------------------------------------------------------------
# the pool actually dispatches to multiple workers
# ----------------------------------------------------------------------


def _record_worker_pid(directory: str) -> None:
    """Worker initializer: leave a pid marker at pool startup."""
    with open(os.path.join(directory, f"worker-{os.getpid()}"), "w") as fh:
        fh.write("up")


class TestDispatch:
    def test_pool_spawns_and_uses_multiple_workers(self, dataset, workloads, tmp_path):
        tasks = make_tasks(dataset, workloads) * 2  # 8 cells to spread
        runner = ParallelRunner(
            jobs=2, worker_initializer=_record_worker_pid, initargs=(str(tmp_path),)
        )
        with runner:
            outcomes = runner.run(tasks)

        started = {int(p.name.split("-")[1]) for p in tmp_path.iterdir()}
        assert len(started) == 2, "jobs=2 should start two worker processes"
        assert os.getpid() not in started

        used = {outcome.worker_pid for outcome in outcomes}
        assert used <= started
        assert os.getpid() not in used
        # Wall-clock execution really happened in the workers.
        assert all(outcome.seconds > 0.0 for outcome in outcomes)

    def test_sequential_runs_in_process(self, dataset, workloads):
        outcomes = ParallelRunner(jobs=1).run(make_tasks(dataset, workloads))
        assert {o.worker_pid for o in outcomes} == {os.getpid()}

    def test_progress_reports_every_task_once(self, dataset, workloads):
        seen = []
        tasks = make_tasks(dataset, workloads)
        ParallelRunner(jobs=2).run(
            tasks, progress=lambda done, total, task: seen.append((done, total))
        )
        assert sorted(seen) == [(i, len(tasks)) for i in range(1, len(tasks) + 1)]

    def test_jobs_default_is_cpu_count(self):
        assert ParallelRunner().jobs == (os.cpu_count() or 1)

    def test_pool_reuse_across_runs(self, dataset, workloads):
        tasks = make_tasks(dataset, workloads, methods={"naive": None})
        with ParallelRunner(jobs=2) as runner:
            first = runner.run(tasks)
            second = runner.run(tasks)
        assert canonical_cell(first[0].cell) == canonical_cell(second[0].cell)


class TestCellMergeOrder:
    def test_merge_order_is_submission_order(self, dataset, workloads):
        """Even when later tasks finish first (naive finishes long before
        the index builds), outcomes come back in task order."""
        methods = {"ggsx": METHOD_CONFIGS["ggsx"], "naive": None}
        tasks = make_tasks(dataset, workloads, methods=methods)
        outcomes = ParallelRunner(jobs=2).run(tasks)
        assert [o.key for o in outcomes] == [t.key for t in tasks]
        assert [o.cell.method for o in outcomes] == ["ggsx", "naive"]
        assert isinstance(outcomes[0].cell, MethodCell)

    def test_scheduling_order_does_not_change_outcomes(self, dataset, workloads):
        """A longest-first (here: reversed) submission permutation must
        be invisible in the merged output."""
        tasks = make_tasks(dataset, workloads)
        fifo = run_cells(tasks, jobs=2)
        reordered = run_cells(
            tasks, jobs=2, order=list(reversed(range(len(tasks))))
        )
        assert list(fifo) == list(reordered) == [t.key for t in tasks]
        for key in fifo:
            assert canonical_cell(fifo[key]) == canonical_cell(reordered[key])


# ----------------------------------------------------------------------
# the persistent pool: workers survive across sweeps
# ----------------------------------------------------------------------


class TestPersistentPool:
    def test_same_runner_reused_for_same_jobs(self):
        with PersistentPool() as pool:
            first = pool.runner(2)
            assert pool.runner(2) is first
            assert pool.active_runner is first

    def test_new_runner_on_jobs_change(self):
        with PersistentPool() as pool:
            first = pool.runner(2)
            second = pool.runner(3)
            assert second is not first and second.jobs == 3
            # The old runner's pool was shut down with it.
            assert first._executor is None

    def test_close_is_idempotent_and_reopens(self):
        pool = PersistentPool()
        runner = pool.runner(2)
        pool.close()
        pool.close()
        assert pool.active_runner is None
        again = pool.runner(2)
        assert again is not runner
        pool.close()

    def test_pool_executes_across_calls_with_warm_workers(
        self, dataset, workloads
    ):
        """Two runs through one persistent pool reuse the same worker
        processes — the whole point of keeping them alive."""
        tasks = make_tasks(dataset, workloads, methods={"naive": None})
        with PersistentPool() as pool:
            runner = pool.runner(2)
            first = runner.run(tasks * 2)
            second = runner.run(tasks * 2)
        assert {o.worker_pid for o in second} <= {o.worker_pid for o in first}
        assert canonical_cell(first[0].cell) == canonical_cell(second[0].cell)

    def test_module_singleton_round_trip(self):
        pool = persistent_pool()
        assert persistent_pool() is pool
        runner = pool.runner(2)
        assert pool.runner(2) is runner
        pool.close()
        assert pool.active_runner is None

    def test_sweeps_share_one_pool(self):
        """Passing the persistent runner into consecutive sweeps keeps
        results equal to fresh-pool runs."""
        from dataclasses import replace

        profile = replace(
            CI_PROFILE,
            nodes_values=(8, 12),
            default_num_graphs=8,
            default_nodes=10,
            default_density=0.2,
            default_labels=3,
            query_sizes=(3,),
            queries_per_size=2,
            method_configs={"ggsx": {"max_path_edges": 2}, "naive": {}},
        )
        with PersistentPool() as pool:
            runner = pool.runner(2)
            first = nodes_sweep(profile, seed=3, jobs=2, runner=runner)
            second = nodes_sweep(
                profile, seed=3, jobs=2, shared_mem=True, runner=runner
            )
            assert pool.active_runner is runner  # sweeps did not close it
        fresh = nodes_sweep(profile, seed=3, jobs=1)
        assert sweep_to_json(canonical_sweep(first)) == sweep_to_json(
            canonical_sweep(fresh)
        )
        assert sweep_to_json(canonical_sweep(second)) == sweep_to_json(
            canonical_sweep(fresh)
        )


class TestPersistentPoolTeardown:
    """The idempotent / reentrancy-safe close contract the serve
    daemon's signal-driven shutdown (plus atexit) relies on."""

    def test_double_close_is_a_noop(self):
        pool = PersistentPool()
        runner = pool.runner(2)
        assert pool.active_runner is runner
        pool.close()
        assert pool.active_runner is None
        pool.close()  # second teardown: nothing to do, nothing raised
        assert pool.active_runner is None

    def test_close_during_close_returns_instead_of_blocking(self):
        import threading
        import time

        pool = PersistentPool()
        pool.runner(2)
        entered = threading.Event()
        release = threading.Event()

        original_close = pool._runner.close

        def slow_close():
            entered.set()
            release.wait(timeout=10)
            original_close()

        pool._runner.close = slow_close
        first = threading.Thread(target=pool.close)
        first.start()
        assert entered.wait(timeout=10)
        # Reentrant close while the first is mid-teardown: must return
        # promptly (a blocked signal handler would deadlock the drain).
        start = time.perf_counter()
        pool.close()
        assert time.perf_counter() - start < 1.0
        release.set()
        first.join(timeout=10)
        assert not first.is_alive()
        assert pool.active_runner is None

    def test_pool_is_usable_again_after_close(self):
        pool = PersistentPool()
        first = pool.runner(2)
        pool.close()
        second = pool.runner(2)
        try:
            assert second is not first
            assert second.map(len, [[1], [1, 2]]) == [1, 2]
        finally:
            pool.close()
