"""CLI end-to-end for the index artifact store.

The acceptance property of the PR, driven through ``repro`` exactly as
CI drives it: a two-invocation sweep (cold then warm against one
``--index-store``) produces byte-identical canonical sweep digests,
with the warm run performing **zero** index builds for covered cells;
``--no-index-reuse`` forces paper-faithful rebuilds; and the
``repro index ls|rm|gc`` group manages the store directory.
"""

from dataclasses import replace

import pytest

import repro.cli.commands as commands
from repro.cli import main
from repro.core.presets import CI_PROFILE
from repro.core.scheduling import clear_index_cache
from repro.core.serialization import canonical_json, load_sweep
from repro.core.sharding import load_manifest, manifest_path_for


@pytest.fixture()
def tiny_profile(monkeypatch):
    profile = replace(
        CI_PROFILE,
        nodes_values=(8, 12),
        graph_count_values=(6, 10),
        default_num_graphs=8,
        default_nodes=10,
        default_density=0.2,
        default_labels=3,
        query_sizes=(3, 4),
        queries_per_size=2,
        build_budget_seconds=10.0,
        query_budget_seconds=10.0,
        real_dataset_scale=0.01,
        real_dataset_names=("PCM",),
        method_configs={"ggsx": {"max_path_edges": 2}, "naive": {}},
    )
    monkeypatch.setattr(commands, "active_profile", lambda: profile)
    clear_index_cache()  # no carry-over between tests: disk tier only
    yield profile
    clear_index_cache()


def run_sweep(tmp_path, tag, *extra):
    json_path = tmp_path / f"{tag}.json"
    code = main(
        [
            "sweep",
            "graphs",
            "--json",
            str(json_path),
            "--index-store",
            str(tmp_path / "store"),
            *extra,
        ]
    )
    assert code == 0
    return json_path


class TestColdWarmSweep:
    def test_warm_run_is_byte_identical_with_zero_builds(
        self, tiny_profile, tmp_path, capsys
    ):
        cold_json = run_sweep(tmp_path, "cold")
        cold_out = capsys.readouterr().out
        assert "4 cell(s) built fresh, 0 reused" in cold_out

        clear_index_cache()  # simulate a fresh invocation: disk tier only
        warm_json = run_sweep(tmp_path, "warm")
        warm_out = capsys.readouterr().out
        assert "0 cell(s) built fresh, 4 reused" in warm_out

        cold = load_sweep(cold_json)
        warm = load_sweep(warm_json)
        assert canonical_json(cold) == canonical_json(warm)

    def test_resumed_cells_are_not_miscounted_as_fresh(
        self, tiny_profile, tmp_path, capsys
    ):
        """A fully resumed run builds nothing and must say so — not
        print 'N cell(s) built fresh' for cells restored whole from the
        manifest."""
        json_path = run_sweep(tmp_path, "cold")
        capsys.readouterr()
        clear_index_cache()
        code = main(
            [
                "sweep",
                "graphs",
                "--json",
                str(json_path),
                "--index-store",
                str(tmp_path / "store"),
                "--resume",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0 cell(s) built fresh, 0 reused" in out
        assert "4 restored from manifest" in out

    def test_manifests_record_artifact_addresses(self, tiny_profile, tmp_path):
        json_path = run_sweep(tmp_path, "cold")
        manifest = load_manifest(manifest_path_for(json_path))
        assert len(manifest.cells) == 4
        assert all(entry.artifact for entry in manifest.cells)
        # Warm manifests record the SAME addresses: content addressing
        # is execution-mode-free.
        clear_index_cache()
        warm_path = run_sweep(tmp_path, "warm")
        warm = load_manifest(manifest_path_for(warm_path))
        assert {(e.key, e.artifact) for e in warm.cells} == {
            (e.key, e.artifact) for e in manifest.cells
        }

    def test_no_index_reuse_forces_fresh_builds(
        self, tiny_profile, tmp_path, capsys
    ):
        cold_json = run_sweep(tmp_path, "cold")
        capsys.readouterr()
        clear_index_cache()
        rebuilt_json = run_sweep(tmp_path, "rebuilt", "--no-index-reuse")
        out = capsys.readouterr().out
        assert "4 cell(s) built fresh, 0 reused" in out
        assert canonical_json(load_sweep(cold_json)) == canonical_json(
            load_sweep(rebuilt_json)
        )

    def test_engine_modes_share_the_store(self, tiny_profile, tmp_path, capsys):
        """A warm engine run (pool + arena + batching) reuses the cold
        sequential run's artifacts and stays byte-identical."""
        cold_json = run_sweep(tmp_path, "cold")
        capsys.readouterr()
        clear_index_cache()
        warm_json = run_sweep(
            tmp_path, "warm", "--jobs", "2", "--shared-mem", "--batch-queries"
        )
        out = capsys.readouterr().out
        assert "0 cell(s) built fresh, 4 reused" in out
        assert canonical_json(load_sweep(cold_json)) == canonical_json(
            load_sweep(warm_json)
        )


class TestIndexSubcommands:
    def _seeded_store(self, tiny_profile, tmp_path):
        run_sweep(tmp_path, "seed")
        return tmp_path / "store"

    def test_ls_lists_artifacts(self, tiny_profile, tmp_path, capsys):
        store = self._seeded_store(tiny_profile, tmp_path)
        capsys.readouterr()
        assert main(["index", "ls", "--index-store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "4 artifact(s)" in out
        assert "ggsx" in out and "naive" in out

    def test_rm_removes_by_address(self, tiny_profile, tmp_path, capsys):
        store = self._seeded_store(tiny_profile, tmp_path)
        capsys.readouterr()
        address = next(store.glob("ggsx-*.idx")).stem
        assert main(["index", "rm", address, "--index-store", str(store)]) == 0
        assert not (store / f"{address}.idx").exists()
        assert main(["index", "rm", address, "--index-store", str(store)]) == 2

    def test_gc_drops_corrupt_files(self, tiny_profile, tmp_path, capsys):
        store = self._seeded_store(tiny_profile, tmp_path)
        (store / "broken.idx").write_bytes(b"junk")
        capsys.readouterr()
        assert main(["index", "gc", "--index-store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "removed 1 unreadable" in out
        assert not (store / "broken.idx").exists()

    def test_gc_max_bytes_evicts(self, tiny_profile, tmp_path, capsys):
        store = self._seeded_store(tiny_profile, tmp_path)
        capsys.readouterr()
        assert (
            main(["index", "gc", "--index-store", str(store), "--max-bytes", "0"])
            == 0
        )
        assert "kept 0 artifact(s)" in capsys.readouterr().out
        assert list(store.glob("*.idx")) == []

    def test_missing_store_dir_flag_is_an_error(self, tiny_profile, capsys):
        assert main(["index", "ls"]) == 2
        assert "--index-store" in capsys.readouterr().err

    def test_ls_on_empty_store(self, tiny_profile, tmp_path, capsys):
        assert main(["index", "ls", "--index-store", str(tmp_path / "nil")]) == 0
        assert "no artifacts" in capsys.readouterr().out


class TestBuildAndQueryStore:
    def _dataset(self, tmp_path):
        data = tmp_path / "d.gfd"
        assert (
            main(
                [
                    "generate",
                    str(data),
                    "--graphs",
                    "12",
                    "--nodes",
                    "9",
                    "--labels",
                    "3",
                ]
            )
            == 0
        )
        return data

    def test_build_reuses_across_invocations(self, tmp_path, capsys):
        data = self._dataset(tmp_path)
        store = str(tmp_path / "store")
        assert main(["build", str(data), "--method", "ggsx",
                     "--index-store", store]) == 0
        first = capsys.readouterr().out
        assert "built ggsx" in first
        clear_index_cache()
        assert main(["build", str(data), "--method", "ggsx",
                     "--index-store", store]) == 0
        second = capsys.readouterr().out
        assert "reused ggsx" in second and "[from index store]" in second

    def test_query_consumes_build_artifacts(self, tmp_path, capsys):
        data = self._dataset(tmp_path)
        queries = tmp_path / "q.gfd"
        assert main(["queries", str(data), str(queries), "--count", "3",
                     "--edges", "3"]) == 0
        store = str(tmp_path / "store")
        assert main(["build", str(data), "--method", "ggsx", "--method",
                     "naive", "--jobs", "1", "--index-store", store]) == 0
        capsys.readouterr()
        clear_index_cache()
        # `repro build` -> `repro query` across invocations: one build.
        assert main(["query", str(data), str(queries), "--method", "ggsx",
                     "--method", "naive", "--index-store", store]) == 0
        out = capsys.readouterr().out
        assert "ggsx" in out and "naive" in out and "DISAGREES" not in out
