"""Property-based tests (hypothesis) on the core invariants.

Three families, matching DESIGN.md's "key correctness invariants":

1. Canonical labels are invariant under vertex renumbering and equal
   only for isomorphic features.
2. VF2 agrees with networkx monomorphism on arbitrary inputs, and
   containment is reflexive/transitive where expected.
3. Every index's filtering never drops a true answer, and verification
   returns exactly the naive oracle's answers (the filter-and-verify
   contract under arbitrary datasets and queries).
"""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.canonical.dfscode import dfs_code_graph, min_dfs_code
from repro.canonical.paths import path_canonical
from repro.canonical.cycles import cycle_canonical
from repro.canonical.trees import tree_canonical
from repro.graphs.dataset import GraphDataset
from repro.graphs.graph import Graph
from repro.indexes import (
    CTIndex,
    GCodeIndex,
    GIndex,
    GraphGrepSXIndex,
    GrapesIndex,
    NaiveIndex,
    TreeDeltaIndex,
)
from repro.isomorphism.vf2 import is_subgraph

from testkit import nx_is_monomorphic, to_networkx, nx_label_match

# ----------------------------------------------------------------------
# graph strategies
# ----------------------------------------------------------------------

LABEL = st.sampled_from("AB")


@st.composite
def graphs(draw, min_vertices=1, max_vertices=6, connected=False):
    n = draw(st.integers(min_vertices, max_vertices))
    labels = [draw(LABEL) for _ in range(n)]
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    chosen = [e for e in possible if draw(st.booleans())]
    graph = Graph(labels, chosen)
    if connected and not graph.is_connected():
        components = graph.connected_components()
        for previous, current in zip(components, components[1:]):
            graph.add_edge(previous[0], current[0])
    return graph


@st.composite
def graph_with_permutation(draw, **kwargs):
    graph = draw(graphs(**kwargs))
    permutation = draw(st.permutations(range(graph.order)))
    return graph, list(permutation)


@st.composite
def trees(draw, min_vertices=2, max_vertices=7):
    n = draw(st.integers(min_vertices, max_vertices))
    labels = [draw(LABEL) for _ in range(n)]
    edges = [(v, draw(st.integers(0, v - 1))) for v in range(1, n)]
    return Graph(labels, edges)


# ----------------------------------------------------------------------
# 1. canonical labels
# ----------------------------------------------------------------------


@given(graph_with_permutation(min_vertices=2, connected=True))
@settings(max_examples=120, deadline=None)
def test_min_dfs_code_invariant_under_renumbering(data):
    graph, permutation = data
    if graph.size == 0:
        return
    assert min_dfs_code(graph) == min_dfs_code(graph.relabeled(permutation))


@given(graphs(min_vertices=2, connected=True), graphs(min_vertices=2, connected=True))
@settings(max_examples=80, deadline=None)
def test_min_dfs_code_separates_non_isomorphic(a, b):
    if a.size == 0 or b.size == 0:
        return
    same_code = min_dfs_code(a) == min_dfs_code(b)
    isomorphic = nx.is_isomorphic(
        to_networkx(a), to_networkx(b), node_match=nx_label_match
    )
    assert same_code == isomorphic


@given(graphs(min_vertices=2, connected=True))
@settings(max_examples=80, deadline=None)
def test_dfs_code_roundtrip(graph):
    if graph.size == 0:
        return
    code = min_dfs_code(graph)
    assert min_dfs_code(dfs_code_graph(code)) == code


@given(st.lists(LABEL, min_size=1, max_size=8))
def test_path_canonical_direction_invariance(labels):
    assert path_canonical(labels) == path_canonical(list(reversed(labels)))


@given(st.lists(LABEL, min_size=3, max_size=8), st.integers(0, 7))
def test_cycle_canonical_rotation_invariance(labels, shift):
    rotated = labels[shift % len(labels):] + labels[: shift % len(labels)]
    assert cycle_canonical(labels) == cycle_canonical(rotated)


@given(st.lists(LABEL, min_size=3, max_size=8))
def test_cycle_canonical_reflection_invariance(labels):
    assert cycle_canonical(labels) == cycle_canonical(list(reversed(labels)))


@given(graph_with_permutation(min_vertices=2, max_vertices=7))
@settings(max_examples=100, deadline=None)
def test_tree_canonical_invariant_under_renumbering(data):
    tree, permutation = data
    if tree.size != tree.order - 1 or not tree.is_connected():
        return
    relabeled = tree.relabeled(permutation)
    assert tree_canonical(tree, list(tree.edges())) == tree_canonical(
        relabeled, list(relabeled.edges())
    )


@given(trees(), trees())
@settings(max_examples=80, deadline=None)
def test_tree_canonical_separates_non_isomorphic(a, b):
    same = tree_canonical(a, list(a.edges())) == tree_canonical(b, list(b.edges()))
    isomorphic = nx.is_isomorphic(
        to_networkx(a), to_networkx(b), node_match=nx_label_match
    )
    assert same == isomorphic


# ----------------------------------------------------------------------
# 2. subgraph isomorphism
# ----------------------------------------------------------------------


@given(graphs(max_vertices=4), graphs(max_vertices=6))
@settings(max_examples=150, deadline=None)
def test_vf2_agrees_with_networkx(query, data):
    assert is_subgraph(query, data) == nx_is_monomorphic(query, data)


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_containment_reflexive(graph):
    assert is_subgraph(graph, graph)


@given(graphs(min_vertices=2, max_vertices=6), st.data())
@settings(max_examples=60, deadline=None)
def test_induced_subgraph_always_contained(graph, data):
    k = data.draw(st.integers(1, graph.order))
    vertices = data.draw(
        st.lists(
            st.integers(0, graph.order - 1), min_size=k, max_size=k, unique=True
        )
    )
    sub, _ = graph.induced_subgraph(vertices)
    assert is_subgraph(sub, graph)


# ----------------------------------------------------------------------
# 3. the filter-and-verify contract, property-based
# ----------------------------------------------------------------------

_INDEX_FACTORIES = [
    lambda: GraphGrepSXIndex(max_path_edges=2),
    lambda: GrapesIndex(max_path_edges=2, workers=1),
    lambda: CTIndex(fingerprint_bits=128, feature_edges=2),
    lambda: GCodeIndex(path_depth=1, counter_buckets=8),
    lambda: GIndex(max_fragment_edges=3, support_ratio=0.34),
    lambda: TreeDeltaIndex(max_feature_edges=3, support_ratio=0.34),
]


@given(
    st.lists(graphs(min_vertices=2, max_vertices=5), min_size=2, max_size=6),
    graphs(min_vertices=1, max_vertices=4),
)
@settings(max_examples=25, deadline=None)
def test_all_indexes_filter_and_verify_exactly(dataset_graphs, query):
    dataset = GraphDataset(graph.copy() for graph in dataset_graphs)
    oracle = NaiveIndex()
    oracle.build(dataset)
    truth = oracle.query(query).answers
    for factory in _INDEX_FACTORIES:
        index = factory()
        index.build(dataset)
        candidates = index.filter(query)
        assert truth <= candidates, f"{index.name} produced false negatives"
        assert index.query(query).answers == truth, f"{index.name} wrong answers"
