"""The sweep orchestration driver's planning layer.

What these tests pin, in the ISSUE's words: cost-balanced and stride
assignments each cover every planned cell exactly once; balanced
assignment's max-shard estimated seconds never exceed stride's given a
skewed history; a history file measurably changes the assignment
(asserted via :class:`CostHistory` rates); and the driver run manifest
plus history-file round trips that ``repro launch --resume`` stands on.
The digest-identity half of the contract (balanced+merged == stride+
merged == unsharded, byte for byte) lives in ``tests/test_cli_launch.py``
where real sweeps run.
"""

import json

import pytest

from repro.core.driver import (
    DriverError,
    DriverRun,
    EXECUTORS,
    InProcessExecutor,
    KubernetesExecutor,
    LocalSubprocessExecutor,
    SSHExecutor,
    append_history,
    assign_shards,
    balanced_partition,
    driver_path_for,
    driver_run_from_json,
    driver_run_to_json,
    experiment_grid,
    load_driver_run,
    load_history,
    load_history_records,
    make_executor,
    plan_seconds,
    plan_units,
    save_driver_run,
    shard_json_path,
    stride_partition,
)
from repro.core.presets import CI_PROFILE
from repro.core.scheduling import CostHistory
from repro.core.sharding import (
    CellAssignment,
    SelectorError,
    manifest_for,
    parse_only,
)


# ----------------------------------------------------------------------
# grid planning without datasets
# ----------------------------------------------------------------------


class TestExperimentGrid:
    @pytest.mark.parametrize(
        "experiment, values_attr",
        [
            ("nodes", "nodes_values"),
            ("density", "density_values"),
            ("labels", "label_values"),
            ("graphs", "graph_count_values"),
            ("real", "real_dataset_names"),
        ],
    )
    def test_matches_the_profile_grid(self, experiment, values_attr):
        x_name, xs, methods = experiment_grid(experiment, CI_PROFILE)
        assert xs == list(getattr(CI_PROFILE, values_attr))
        assert methods == list(CI_PROFILE.method_names())
        assert x_name  # every experiment has an axis label

    def test_method_restriction(self):
        _, _, methods = experiment_grid(
            "graphs", CI_PROFILE, methods=["ggsx", "naive"]
        )
        assert methods == ["ggsx", "naive"]

    def test_selector_narrows_like_the_sweep_would(self):
        selector = parse_only(["graphs=40,method=ggsx"])
        _, xs, methods = experiment_grid(
            "graphs", CI_PROFILE, methods=["naive", "ggsx"], selector=selector
        )
        assert (xs, methods) == ([40], ["ggsx"])

    def test_bad_selector_fails_loudly(self):
        selector = parse_only(["nodes=40"])  # wrong axis for 'graphs'
        with pytest.raises(SelectorError):
            experiment_grid("graphs", CI_PROFILE, selector=selector)

    def test_unknown_experiment(self):
        with pytest.raises(DriverError, match="unknown experiment"):
            experiment_grid("fig7", CI_PROFILE)


class TestPlanCosts:
    def test_units_grow_with_graph_count(self):
        units = [plan_units("graphs", CI_PROFILE, x) for x in (40, 80, 320)]
        assert units == sorted(units)
        assert units[0] > 0.0

    def test_units_grow_with_nodes_and_density(self):
        assert plan_units("nodes", CI_PROFILE, 52) > plan_units(
            "nodes", CI_PROFILE, 10
        )
        assert plan_units("density", CI_PROFILE, 0.30) > plan_units(
            "density", CI_PROFILE, 0.05
        )

    def test_real_datasets_priced_from_their_specs(self):
        # Prices follow the scaled Table 1 stand-in shapes: at CI scale
        # AIDS keeps 800 graphs while PPI shrinks to a handful, so the
        # planner must not treat the four datasets as interchangeable.
        units = {
            name: plan_units("real", CI_PROFILE, name)
            for name in CI_PROFILE.real_dataset_names
        }
        assert all(value > 0.0 for value in units.values())
        assert len(set(units.values())) == len(units)
        assert units["AIDS"] > units["PPI"]

    def test_plan_seconds_without_history_is_the_static_units(self):
        key = (40, "ggsx")
        assert plan_seconds("graphs", CI_PROFILE, key) == plan_units(
            "graphs", CI_PROFILE, 40
        )

    def test_plan_seconds_uses_exact_history_verbatim(self):
        key = (40, "ggsx")
        history = CostHistory([(key, "ggsx", 12.5, 999.0)])
        assert plan_seconds("graphs", CI_PROFILE, key, history) == 12.5

    def test_plan_seconds_prices_unrecorded_cells_at_method_rate(self):
        history = CostHistory([((40, "ggsx"), "ggsx", 10.0, 5.0)])  # 2 s/unit
        units = plan_units("graphs", CI_PROFILE, 80)
        assert plan_seconds(
            "graphs", CI_PROFILE, (80, "ggsx"), history
        ) == pytest.approx(2.0 * units)


# ----------------------------------------------------------------------
# partition properties (the ISSUE's test checklist)
# ----------------------------------------------------------------------


def _grid(n_x=4, methods=("naive", "ggsx")):
    return [(x, m) for x in range(1, n_x + 1) for m in methods]


class TestPartitions:
    @pytest.mark.parametrize("count", [1, 2, 3, 5, 8, 11])
    @pytest.mark.parametrize("strategy", ["balanced", "stride"])
    def test_every_cell_lands_in_exactly_one_shard(self, count, strategy):
        keys = _grid()
        costs = [float(i + 1) for i in range(len(keys))]
        shards = assign_shards(keys, costs, count, strategy)
        assert len(shards) == count
        flat = [key for shard in shards for key in shard]
        assert sorted(flat) == sorted(keys)  # disjoint + covering
        assert len(set(flat)) == len(keys)

    def test_shards_keep_grid_order_internally(self):
        keys = _grid()
        costs = [1.0] * len(keys)
        for shard in assign_shards(keys, costs, 3, "balanced"):
            assert shard == sorted(shard, key=keys.index)

    def test_stride_matches_shardspec_take(self):
        from repro.core.sharding import ShardSpec

        keys = _grid()
        shards = assign_shards(keys, [1.0] * len(keys), 3, "stride")
        for i, shard in enumerate(shards, start=1):
            assert shard == ShardSpec(index=i, count=3).take(keys)

    def test_balanced_beats_stride_on_skewed_history(self):
        # Grid order interleaves methods, so stride 1/2 stacks BOTH
        # expensive cells ((1, slow) and (2, slow)) on one shard while
        # LPT splits them — the exact failure mode cost-balancing fixes.
        keys = [(1, "slow"), (1, "fast"), (2, "slow"), (2, "fast")]
        history = CostHistory(
            [
                ((1, "slow"), "slow", 100.0, 1.0),
                ((1, "fast"), "fast", 1.0, 1.0),
                ((2, "slow"), "slow", 90.0, 1.0),
                ((2, "fast"), "fast", 2.0, 1.0),
            ]
        )
        costs = {
            key: history.predict_seconds(key, key[1], 1.0) for key in keys
        }
        cost_list = [costs[key] for key in keys]
        balanced = assign_shards(keys, cost_list, 2, "balanced")
        stride = assign_shards(keys, cost_list, 2, "stride")

        def makespan(shards):
            return max(sum(costs[key] for key in shard) for shard in shards)

        assert makespan(balanced) <= makespan(stride)
        assert makespan(balanced) == 100.0  # the 100s cell runs alone
        assert makespan(stride) == 190.0  # both slow cells on shard 1

    def test_lpt_is_deterministic_on_ties(self):
        costs = [5.0, 5.0, 5.0, 5.0]
        assert balanced_partition(costs, 2) == balanced_partition(costs, 2)
        assert balanced_partition(costs, 2) == [[0, 2], [1, 3]]

    def test_more_shards_than_cells_leaves_empties(self):
        shards = balanced_partition([3.0, 1.0], 4)
        assert sorted(len(s) for s in shards) == [0, 0, 1, 1]
        assert stride_partition(2, 4)[2:] == [[], []]

    def test_history_measurably_changes_the_assignment(self):
        """The acceptance criterion: one run's recorded history changes
        the next launch's shard assignment, via CostHistory rates."""
        keys = _grid(2)  # (1, naive) (1, ggsx) (2, naive) (2, ggsx)
        # Static planning is method-blind: both methods of one x cost
        # the same, so LPT pairs each x's methods across shards.
        static = [1000.0, 1000.0, 1000.0, 1000.0]
        blind = assign_shards(keys, static, 2, "balanced")
        assert blind == [[(1, "naive"), (2, "naive")], [(1, "ggsx"), (2, "ggsx")]]
        # A completed run measured every cell: naive on x=1 is the
        # outlier the static model could not see.
        history = CostHistory(
            [(key, key[1], seconds, 1000.0)
             for key, seconds in zip(keys, (100.0, 1.0, 2.0, 3.0))]
        )
        calibrated = [
            history.predict_seconds(key, key[1], units)
            for key, units in zip(keys, static)
        ]
        assert calibrated == [100.0, 1.0, 2.0, 3.0]  # exact seconds back
        informed = assign_shards(keys, calibrated, 2, "balanced")
        assert blind != informed
        # The measured outlier gets a shard to itself.
        assert [(1, "naive")] in informed

    def test_mismatched_lengths_and_bad_strategy_fail(self):
        with pytest.raises(DriverError, match="cost estimates"):
            assign_shards([(1, "a")], [], 2)
        with pytest.raises(DriverError, match="unknown assignment strategy"):
            assign_shards([(1, "a")], [1.0], 2, "random")
        with pytest.raises(DriverError, match="at least 1 shard"):
            balanced_partition([1.0], 0)


# ----------------------------------------------------------------------
# executors
# ----------------------------------------------------------------------


class TestExecutors:
    def test_registry_names(self):
        assert set(EXECUTORS) == {"local", "inprocess", "ssh", "k8s"}
        for name in EXECUTORS:
            assert make_executor(name).name == name

    def test_unknown_executor(self):
        with pytest.raises(DriverError, match="unknown executor"):
            make_executor("slurm")

    @pytest.mark.parametrize("cls", [SSHExecutor, KubernetesExecutor])
    def test_fleet_stubs_point_at_the_docs(self, cls):
        with pytest.raises(DriverError, match="documented stub"):
            cls().run([])

    def test_concrete_executors_are_shard_executors(self):
        from repro.core.driver import ShardExecutor

        assert isinstance(LocalSubprocessExecutor(), ShardExecutor)
        assert isinstance(InProcessExecutor(), ShardExecutor)


# ----------------------------------------------------------------------
# driver run manifests
# ----------------------------------------------------------------------


def _run() -> DriverRun:
    return DriverRun(
        experiment="graphs",
        profile="ci",
        seed=7,
        x_name="number of graphs",
        x_values=[40, 80],
        methods=["naive", "ggsx"],
        selector={"method": ["naive", "ggsx"]},
        shards=2,
        strategy="balanced",
        jobs=2,
        assignment=[[(40, "naive"), (80, "ggsx")], [(40, "ggsx"), (80, "naive")]],
        estimated_seconds=[3.5, 3.25],
        merged_digest="abc123",
    )


class TestDriverRun:
    def test_round_trip(self):
        run = _run()
        again = driver_run_from_json(driver_run_to_json(run))
        assert again == run
        assert again.identity() == run.identity()

    def test_save_load(self, tmp_path):
        path = tmp_path / "out.driver.json"
        save_driver_run(_run(), path)
        assert load_driver_run(path) == _run()

    def test_identity_excludes_outcome_and_strategy(self):
        import dataclasses

        run = _run()
        relaunched = dataclasses.replace(
            run, merged_digest="", jobs=8, strategy="stride"
        )
        assert relaunched.identity() == run.identity()
        other_grid = dataclasses.replace(run, x_values=[40])
        assert other_grid.identity() != run.identity()

    def test_missing_file_and_garbage_are_loud(self, tmp_path):
        with pytest.raises(DriverError, match="not found"):
            load_driver_run(tmp_path / "nope.driver.json")
        bad = tmp_path / "bad.driver.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(DriverError, match="not valid JSON"):
            load_driver_run(bad)
        bad.write_text('{"schema": "something-else"}', encoding="utf-8")
        with pytest.raises(DriverError, match="not a repro-driver-run-v1"):
            load_driver_run(bad)
        bad.write_text(
            '{"schema": "repro-driver-run-v1", "experiment": "graphs"}',
            encoding="utf-8",
        )
        with pytest.raises(DriverError, match="malformed"):
            load_driver_run(bad)

    def test_paths_derive_from_the_json_output(self):
        assert driver_path_for("out/run.json").name == "run.driver.json"
        assert (
            shard_json_path("out/run.json", 2, 4).name == "run.shard2of4.json"
        )


# ----------------------------------------------------------------------
# cross-invocation history files
# ----------------------------------------------------------------------


def _manifest(cells):
    """A minimal manifest-like object for history appends."""
    from repro.core.experiments import SweepResult
    from repro.core.runner import MethodCell

    sweep = SweepResult(
        x_name="number of graphs",
        x_values=sorted({x for x, _ in cells}),
        methods=list(dict.fromkeys(m for _, m in cells)),
        query_sizes=(3,),
    )
    for (x, m), seconds in cells.items():
        cell = MethodCell(method=m, build_status="ok", build_seconds=seconds)
        sweep.cells[(x, m)] = cell
        sweep.cost_units[(x, m)] = 2.0
    return manifest_for(sweep, experiment="graphs", seed=0, profile="ci")


class TestHistoryFiles:
    def test_append_then_load_round_trip(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        manifest = _manifest({(40, "naive"): 1.0, (40, "ggsx"): 3.0})
        assert append_history(path, manifest, "graphs") == 2
        records = load_history_records(path, "graphs", "ci")
        assert [(r[0], r[1]) for r in records] == [
            ((40, "naive"), "naive"),
            ((40, "ggsx"), "ggsx"),
        ]
        history = load_history(path, "graphs", "ci")
        assert len(history) == 2
        # seconds/units rates: 1.0/2.0 and 3.0/2.0
        assert history.rate_for((40, "naive"), "naive") == pytest.approx(0.5)
        assert history.rate_for((40, "ggsx"), "ggsx") == pytest.approx(1.5)

    def test_keys_limit_restricts_the_append(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        manifest = _manifest({(40, "naive"): 1.0, (80, "naive"): 2.0})
        appended = append_history(
            path, manifest, "graphs", keys={(80, "naive")}
        )
        assert appended == 1
        [record] = load_history_records(path, "graphs", "ci")
        assert record[0] == (80, "naive")

    def test_foreign_experiment_and_profile_records_are_skipped(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        append_history(path, _manifest({(40, "naive"): 1.0}), "graphs")
        assert load_history_records(path, "nodes", "ci") == []
        assert load_history_records(path, "graphs", "paper") == []
        assert load_history(path, "nodes", "ci") is None

    def test_interleaved_writers_and_torn_lines_degrade_gracefully(
        self, tmp_path
    ):
        path = tmp_path / "runs.jsonl"
        append_history(path, _manifest({(40, "naive"): 1.0}), "graphs")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('{"schema": "other"}\n')
            handle.write('["a", "list"]\n')
            handle.write(
                json.dumps(
                    {
                        "schema": "repro-cost-history-v1",
                        "experiment": "graphs",
                        "profile": "ci",
                        "x": 80,
                        "method": "naive",
                        "seconds": "NaN-ish",
                        "units": {},
                    }
                )
                + "\n"
            )
            handle.write('{"schema": "repro-cost-history-v1"')  # torn
        assert len(load_history_records(path, "graphs", "ci")) == 1

    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_history_records(tmp_path / "none.jsonl", "graphs", "ci") == []
        assert load_history(tmp_path / "none.jsonl", "graphs", "ci") is None

    def test_later_records_win_on_exact_keys(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        append_history(path, _manifest({(40, "naive"): 1.0}), "graphs")
        append_history(path, _manifest({(40, "naive"): 9.0}), "graphs")
        history = load_history(path, "graphs", "ci")
        assert history.predict_seconds((40, "naive"), "naive", 2.0) == 9.0


# ----------------------------------------------------------------------
# the --cells assignment language (driver <-> sweep seam)
# ----------------------------------------------------------------------


class TestCellAssignment:
    X = [40, 80]
    METHODS = ["naive", "ggsx"]

    def test_spec_round_trip(self):
        keys = [(40, "ggsx"), (80, "naive")]
        assignment = CellAssignment.of(keys)
        assert assignment.spec() == "40:ggsx,80:naive"
        parsed = CellAssignment.parse([assignment.spec()])
        # resolve returns grid order (x outer, method inner)
        assert parsed.resolve(self.X, self.METHODS) == [
            (40, "ggsx"),
            (80, "naive"),
        ]

    def test_parse_dedupes_and_splits_commas(self):
        parsed = CellAssignment.parse(["40:naive,40:naive", "80:ggsx"])
        assert parsed.entries == (("40", "naive"), ("80", "ggsx"))

    def test_malformed_entries_fail(self):
        for bad in (["40"], [":naive"], ["40:"]):
            with pytest.raises(SelectorError, match="X:METHOD"):
                CellAssignment.parse(bad)
        with pytest.raises(SelectorError, match="selects nothing"):
            CellAssignment.parse([" , "])

    def test_unknown_x_and_method_fail_loudly(self):
        with pytest.raises(SelectorError, match="matches no x value"):
            CellAssignment.parse(["99:naive"]).resolve(
                self.X, self.METHODS, "number of graphs"
            )
        with pytest.raises(SelectorError, match="not in this sweep's roster"):
            CellAssignment.parse(["40:vf9"]).resolve(
                self.X, self.METHODS, "number of graphs"
            )

    def test_float_x_values_resolve_by_str(self):
        assignment = CellAssignment.of([(0.12, "naive")])
        assert assignment.resolve([0.05, 0.12], ["naive"]) == [(0.12, "naive")]


class FakeLog:
    def __init__(self):
        self.closed = False

    def close(self):
        self.closed = True


class FakeProcess:
    """A subprocess double: scripted wait behavior, recorded signals."""

    def __init__(self, code=0, wait_raises=None, ignores_terminate=False):
        self.code = code
        self.wait_raises = wait_raises
        self.ignores_terminate = ignores_terminate
        self.terminated = False
        self.killed = False

    def terminate(self):
        self.terminated = True

    def kill(self):
        self.killed = True

    def wait(self, timeout=None):
        if self.wait_raises is not None:
            raised, self.wait_raises = self.wait_raises, None
            raise raised
        if timeout is not None and self.ignores_terminate and not self.killed:
            import subprocess

            raise subprocess.TimeoutExpired(cmd="fake", timeout=timeout)
        return self.code


class TestStopProcesses:
    """The terminate -> wait(grace) -> kill escalation (this PR's
    executor interruption fix)."""

    def test_cooperative_children_are_terminated_not_killed(self):
        from repro.core.driver import _stop_processes

        pairs = [(FakeProcess(), FakeLog()) for _ in range(3)]
        _stop_processes(pairs, grace=0.1)
        for process, log in pairs:
            assert process.terminated and not process.killed
            assert log.closed

    def test_stubborn_children_are_killed(self):
        from repro.core.driver import _stop_processes

        stubborn = FakeProcess(ignores_terminate=True)
        gentle = FakeProcess()
        pairs = [(stubborn, FakeLog()), (gentle, FakeLog())]
        _stop_processes(pairs, grace=0.01)
        assert stubborn.terminated and stubborn.killed
        assert gentle.terminated and not gentle.killed
        assert all(log.closed for _, log in pairs)

    def test_already_reaped_children_never_raise(self):
        from repro.core.driver import _stop_processes

        dead = FakeProcess(wait_raises=OSError("No child processes"))
        dead.terminate = lambda: (_ for _ in ()).throw(OSError("gone"))
        log = FakeLog()
        _stop_processes([(dead, log)], grace=0.01)
        assert log.closed

    def test_interrupt_mid_wait_stops_remaining_shards(self):
        """Ctrl-C while waiting on shard 1 must terminate shards 1..n,
        not orphan them; shard 0's completed code is simply dropped
        with the raised interrupt."""
        executor = LocalSubprocessExecutor()
        executor.stop_grace = 0.01
        done = FakeProcess(code=0)
        interrupted = FakeProcess(wait_raises=KeyboardInterrupt())
        orphan_risk = FakeProcess(ignores_terminate=True)
        pairs = [
            (done, FakeLog()),
            (interrupted, FakeLog()),
            (orphan_risk, FakeLog()),
        ]
        with pytest.raises(KeyboardInterrupt):
            executor._await(pairs)
        assert not done.terminated  # it had already exited
        assert interrupted.terminated
        assert orphan_risk.terminated and orphan_risk.killed
        assert all(log.closed for _, log in pairs)

    def test_clean_waits_return_codes_in_order(self):
        executor = LocalSubprocessExecutor()
        pairs = [(FakeProcess(code=i), FakeLog()) for i in range(3)]
        assert executor._await(pairs) == [0, 1, 2]
        assert all(log.closed for _, log in pairs)

    def test_sigterm_masking_child_is_killed_for_real(self, tmp_path):
        """Integration: a real child that traps SIGTERM is gone after
        _stop_processes, via the SIGKILL escalation."""
        import subprocess
        import sys

        from repro.core.driver import _stop_processes

        process = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "import signal, time\n"
                "signal.signal(signal.SIGTERM, signal.SIG_IGN)\n"
                "print('up', flush=True)\n"
                "time.sleep(60)\n",
            ],
            stdout=subprocess.PIPE,
        )
        assert process.stdout.readline().strip() == b"up"
        log = FakeLog()
        _stop_processes([(process, log)], grace=0.2)
        assert process.poll() is not None
        assert log.closed
        process.stdout.close()
