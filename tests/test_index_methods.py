"""Method-specific behaviour tests for the six indexes.

The contract tests (test_index_contract.py) prove correctness; these
tests pin down each method's *distinguishing* mechanics — the design
decisions the paper contrasts in §3.
"""

import pytest

from repro.generators.graphgen import GraphGenConfig, generate_dataset
from repro.generators.queries import generate_queries
from repro.graphs.dataset import GraphDataset
from repro.graphs.graph import Graph
from repro.indexes import (
    CTIndex,
    GCodeIndex,
    GIndex,
    GraphGrepSXIndex,
    GrapesIndex,
    NaiveIndex,
    TreeDeltaIndex,
)
from repro.indexes.pathtrie import PathTrie

from testkit import cycle_graph, path_graph, star_graph, triangle


@pytest.fixture(scope="module")
def dataset():
    config = GraphGenConfig(
        num_graphs=25, mean_nodes=12, mean_density=0.2, num_labels=4, nodes_stddev=2
    )
    return generate_dataset(config, seed=5)


class TestPathTrie:
    def test_insert_and_lookup(self):
        trie = PathTrie()
        trie.insert(("A", "B"), graph_id=0, count=2)
        node = trie.lookup(("A", "B"))
        assert node is not None and node.counts == {0: 2}

    def test_lookup_missing(self):
        assert PathTrie().lookup(("X",)) is None

    def test_counts_accumulate(self):
        trie = PathTrie()
        trie.insert(("A",), 0, 1)
        trie.insert(("A",), 0, 2)
        assert trie.lookup(("A",)).counts == {0: 3}

    def test_prefix_sharing(self):
        trie = PathTrie()
        trie.insert(("A", "B", "C"), 0, 1)
        trie.insert(("A", "B", "D"), 0, 1)
        # Nodes: root, A, AB, ABC, ABD = 5.
        assert trie.node_count() == 5

    def test_locations_stored_when_enabled(self):
        trie = PathTrie(keep_locations=True)
        trie.insert(("A",), 0, 1, starts={3, 4})
        assert trie.lookup(("A",)).starts == {0: {3, 4}}

    def test_merge_disjoint_graphs(self):
        left = PathTrie(keep_locations=True)
        right = PathTrie(keep_locations=True)
        left.insert(("A",), 0, 1, starts={0})
        right.insert(("A",), 1, 2, starts={5})
        right.insert(("B",), 1, 1, starts={6})
        left.merge(right)
        assert left.lookup(("A",)).counts == {0: 1, 1: 2}
        assert left.lookup(("A",)).starts == {0: {0}, 1: {5}}
        assert left.lookup(("B",)).counts == {1: 1}

    def test_feature_count(self):
        trie = PathTrie()
        trie.insert(("A", "B"), 0, 1)
        trie.insert(("A",), 0, 1)
        trie.insert(("A", "B"), 1, 1)
        assert trie.num_features == 2


class TestGGSX:
    def test_count_filtering_excludes_scarce_graphs(self):
        # Query needs the A-A edge twice; g1 has it once, g2 twice.
        g1 = path_graph("AAB")                       # one A-A edge
        g2 = Graph("AAAB", [(0, 1), (1, 2), (2, 3)])  # two A-A edges
        dataset = GraphDataset([g1, g2])
        index = GraphGrepSXIndex(max_path_edges=2)
        index.build(dataset)
        query = path_graph("AAA")  # needs two A-A edges
        assert index.filter(query) == {1}

    def test_unknown_feature_empties_candidates(self, dataset):
        index = GraphGrepSXIndex(max_path_edges=2)
        index.build(dataset)
        query = Graph(["Z1", "Z2"], [(0, 1)])
        assert index.filter(query) == set()

    def test_longer_paths_filter_no_worse(self, dataset):
        queries = generate_queries(dataset, 6, 6, seed=3)
        short_index = GraphGrepSXIndex(max_path_edges=1)
        long_index = GraphGrepSXIndex(max_path_edges=3)
        short_index.build(dataset)
        long_index.build(dataset)
        for query in queries:
            assert long_index.filter(query) <= short_index.filter(query)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            GraphGrepSXIndex(max_path_edges=0)


class TestGrapes:
    def test_parallel_build_matches_serial(self, dataset):
        serial = GrapesIndex(max_path_edges=3, workers=1)
        parallel = GrapesIndex(max_path_edges=3, workers=4)
        serial.build(dataset)
        parallel.build(dataset)
        queries = generate_queries(dataset, 6, 4, seed=1)
        for query in queries:
            assert serial.filter(query) == parallel.filter(query)

    def test_location_refinement_at_least_as_strong_as_ggsx(self, dataset):
        """Grapes = GGSX filtering + location refinement, so its
        candidate sets can only be subsets of GGSX's."""
        ggsx = GraphGrepSXIndex(max_path_edges=3)
        grapes = GrapesIndex(max_path_edges=3, workers=2)
        ggsx.build(dataset)
        grapes.build(dataset)
        for size in (4, 8):
            for query in generate_queries(dataset, 5, size, seed=size):
                assert grapes.filter(query) <= ggsx.filter(query)

    def test_component_refinement_prunes(self):
        """A graph with the query's features scattered across far-apart
        regions is pruned by the marked-component check."""
        # Data graph: A-B at one end, disconnected B-C elsewhere.
        scattered = Graph("ABBC", [(0, 1), (2, 3)])
        containing = Graph("ABC", [(0, 1), (1, 2)])
        dataset = GraphDataset([scattered, containing])
        index = GrapesIndex(max_path_edges=1, workers=1)
        index.build(dataset)
        query = path_graph("ABC")
        # Path-count filtering alone keeps both (both have A-B and B-C
        # edges); the component projection rejects the scattered one.
        assert index.filter(query) == {1}

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            GrapesIndex(workers=0)


class TestCTIndex:
    def test_fingerprint_containment_for_subgraphs(self, dataset):
        index = CTIndex(fingerprint_bits=512, feature_edges=3)
        index.build(dataset)
        queries = generate_queries(dataset, 6, 6, seed=2)
        for query in queries:
            query_fp = index.fingerprint(query)
            for graph_id in NaiveIndex_answers(dataset, query):
                assert index.fingerprint(dataset[graph_id]).contains(query_fp)

    def test_narrow_fingerprints_weaker_filtering(self, dataset):
        wide = CTIndex(fingerprint_bits=4096, feature_edges=3)
        narrow = CTIndex(fingerprint_bits=32, feature_edges=3)
        wide.build(dataset)
        narrow.build(dataset)
        queries = generate_queries(dataset, 8, 6, seed=4)
        wide_total = sum(len(wide.filter(q)) for q in queries)
        narrow_total = sum(len(narrow.filter(q)) for q in queries)
        assert wide_total <= narrow_total

    def test_index_size_independent_of_graph_size(self):
        small = GraphDataset([path_graph("AB") for _ in range(10)])
        big_graphs = GraphDataset(
            [cycle_graph("ABCDEFGH") for _ in range(10)]
        )
        small_index = CTIndex(fingerprint_bits=256, feature_edges=2)
        big_index = CTIndex(fingerprint_bits=256, feature_edges=2)
        small_index.build(small)
        big_index.build(big_graphs)
        # Fixed-width fingerprints: same payload size per graph.
        assert small_index.size_bytes() == pytest.approx(
            big_index.size_bytes(), rel=0.25
        )

    def test_cycle_features_distinguish_cycles_from_paths(self):
        # A 4-cycle AAAA vs a 4-path AAAA: tree features alone collide,
        # cycle features separate them.
        data = GraphDataset([path_graph("AAAAA")])
        index = CTIndex(fingerprint_bits=1024, feature_edges=4)
        index.build(data)
        assert index.filter(cycle_graph("AAAA")) == set()

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            CTIndex(fingerprint_bits=4)
        with pytest.raises(ValueError):
            CTIndex(feature_edges=0)


def NaiveIndex_answers(dataset, query):
    oracle = NaiveIndex()
    oracle.build(dataset)
    return oracle.query(query).answers


class TestGCode:
    def test_signature_dominance_reflexive(self, dataset):
        index = GCodeIndex()
        graph = dataset[0]
        for v in range(min(4, graph.order)):
            signature = index.vertex_signature(graph, v)
            assert signature.dominates(signature)

    def test_signature_dominance_on_sub_structure(self):
        index = GCodeIndex()
        sub = star_graph("C", "HH")
        sup = star_graph("C", "HHH")
        assert index.vertex_signature(sup, 0).dominates(
            index.vertex_signature(sub, 0)
        )
        assert not index.vertex_signature(sub, 0).dominates(
            index.vertex_signature(sup, 0)
        )

    def test_label_mismatch_never_dominates(self):
        index = GCodeIndex()
        a = index.vertex_signature(Graph(["A"]), 0)
        b = index.vertex_signature(Graph(["B"]), 0)
        assert not a.dominates(b) and not b.dominates(a)

    def test_eigenvalues_descending(self, dataset):
        index = GCodeIndex()
        signature = index.vertex_signature(dataset[0], 0)
        values = [v for v in signature.eigenvalues if v != -float("inf")]
        assert values == sorted(values, reverse=True)

    def test_order_prefilter_skips_smaller_graphs(self):
        dataset = GraphDataset([path_graph("AB"), path_graph("ABCD")])
        index = GCodeIndex()
        index.build(dataset)
        query = path_graph("ABC")
        assert 0 not in index.filter(query)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            GCodeIndex(path_depth=0)
        with pytest.raises(ValueError):
            GCodeIndex(top_eigenvalues=0)
        with pytest.raises(ValueError):
            GCodeIndex(counter_buckets=0)


class TestGIndex:
    def test_frequent_set_superset_of_indexed(self, dataset):
        index = GIndex(max_fragment_edges=3, support_ratio=0.2)
        index.build(dataset)
        assert set(index._id_lists) <= index._frequent

    def test_support_lists_correct(self, dataset):
        from repro.canonical.dfscode import dfs_code_graph
        from repro.isomorphism.vf2 import is_subgraph

        index = GIndex(max_fragment_edges=3, support_ratio=0.2)
        index.build(dataset)
        for code, ids in list(index._id_lists.items())[:10]:
            pattern = dfs_code_graph(code)
            expected = {
                g.graph_id for g in dataset if is_subgraph(pattern, g)
            }
            assert set(ids) == expected

    def test_higher_gamma_selects_fewer(self, dataset):
        lenient = GIndex(max_fragment_edges=3, support_ratio=0.2, discriminative_ratio=1.0)
        strict = GIndex(max_fragment_edges=3, support_ratio=0.2, discriminative_ratio=4.0)
        lenient.build(dataset)
        strict.build(dataset)
        assert len(strict._id_lists) <= len(lenient._id_lists)

    def test_build_details_reported(self, dataset):
        index = GIndex(max_fragment_edges=3, support_ratio=0.2)
        report = index.build(dataset)
        assert report.details["frequent_fragments"] >= report.details["indexed_fragments"]

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            GIndex(support_ratio=0.0)
        with pytest.raises(ValueError):
            GIndex(max_fragment_edges=0)


class TestTreeDelta:
    def test_index_contains_only_trees(self, dataset):
        from repro.canonical.dfscode import dfs_code_graph

        index = TreeDeltaIndex(max_feature_edges=4, support_ratio=0.2)
        index.build(dataset)
        for code in index._tree_ids:
            pattern = dfs_code_graph(code)
            assert pattern.size == pattern.order - 1

    def test_delta_cache_grows_on_cyclic_queries(self, dataset):
        index = TreeDeltaIndex(
            max_feature_edges=4,
            support_ratio=0.2,
            delta_min_discriminative=0.0,
            delta_add_threshold=1.0,
        )
        index.build(dataset)
        assert index._delta_ids == {}
        # A cyclic query forces δ evaluation; with add threshold at its
        # most permissive, any discriminative δ is adopted.
        label = dataset[0].label(0)
        triangle_query = Graph([label] * 3, [(0, 1), (1, 2), (0, 2)])
        index.query(triangle_query)
        queries = generate_queries(dataset, 6, 6, seed=9)
        for query in queries:
            index.query(query)
        # At least the bookkeeping ran; adoption depends on the data,
        # so only assert consistency of what was adopted.
        for code, ids in index._delta_ids.items():
            assert isinstance(ids, frozenset)

    def test_delta_filtering_still_sound(self, dataset):
        """With maximally aggressive δ settings, answers stay exact."""
        aggressive = TreeDeltaIndex(
            max_feature_edges=4,
            support_ratio=0.2,
            delta_min_discriminative=0.0,
            delta_add_threshold=1.0,
        )
        aggressive.build(dataset)
        oracle = NaiveIndex()
        oracle.build(dataset)
        for size in (4, 8):
            for query in generate_queries(dataset, 5, size, seed=size):
                assert aggressive.query(query).answers == oracle.query(query).answers

    def test_acyclic_query_uses_no_deltas(self, dataset):
        index = TreeDeltaIndex(max_feature_edges=4, support_ratio=0.2)
        index.build(dataset)
        labels = [dataset[0].label(v) for v in range(3)]
        query = Graph(labels, [(0, 1), (1, 2)])
        index.query(query)
        assert index._delta_ids == {}

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TreeDeltaIndex(support_ratio=1.5)
        with pytest.raises(ValueError):
            TreeDeltaIndex(max_feature_edges=0)


class TestGrapesCacheSafety:
    def test_verify_with_mismatched_query_stays_correct(self, dataset):
        """verify() after filter() for a *different* query must not use
        the stale component projections (that would drop answers)."""
        index = GrapesIndex(max_path_edges=3, workers=1)
        index.build(dataset)
        queries = generate_queries(dataset, 4, 6, seed=31)
        oracle = NaiveIndex()
        oracle.build(dataset)
        q_first, q_second = queries[0], queries[1]
        index.filter(q_first)  # populates the cache for q_first
        # Now verify q_second against the full dataset directly.
        answers = index.verify(q_second, dataset.all_ids())
        assert answers == oracle.query(q_second).answers
