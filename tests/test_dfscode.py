"""Unit and randomized tests for gSpan minimum DFS codes."""

import itertools

import networkx as nx
import pytest

from repro.canonical.dfscode import (
    dfs_code_graph,
    is_min_dfs_code,
    min_dfs_code,
    rightmost_path,
)
from repro.graphs.graph import Graph, GraphError

from testkit import (
    cycle_graph,
    nx_label_match,
    path_graph,
    random_graph,
    to_networkx,
    triangle,
)


class TestMinDfsCode:
    def test_single_edge(self):
        assert min_dfs_code(path_graph("AB")) == ((0, 1, "A", "B"),)

    def test_single_edge_label_order(self):
        # The smaller label always comes first.
        assert min_dfs_code(path_graph("BA")) == ((0, 1, "A", "B"),)

    def test_triangle_has_backward_edge(self):
        code = min_dfs_code(triangle("AAA"))
        assert code == ((0, 1, "A", "A"), (1, 2, "A", "A"), (2, 0, "A", "A"))

    def test_path_code(self):
        code = min_dfs_code(path_graph("ABC"))
        assert code == ((0, 1, "A", "B"), (1, 2, "B", "C"))

    def test_invariant_under_relabeling_examples(self):
        graph = Graph("ABAC", [(0, 1), (1, 2), (2, 3), (0, 3)])
        for permutation in itertools.permutations(range(4)):
            assert min_dfs_code(graph.relabeled(list(permutation))) == min_dfs_code(
                graph
            )

    def test_no_edges_rejected(self):
        with pytest.raises(GraphError):
            min_dfs_code(Graph(["A"]))

    def test_disconnected_rejected(self):
        with pytest.raises(GraphError):
            min_dfs_code(Graph("AABB", [(0, 1), (2, 3)]))


class TestRandomizedInvariance:
    def test_relabeling_invariance(self, rng):
        for _ in range(120):
            graph = random_graph(rng, 2, 6, connected=True)
            permutation = list(range(graph.order))
            rng.shuffle(permutation)
            assert min_dfs_code(graph) == min_dfs_code(graph.relabeled(permutation))

    def test_code_equality_iff_isomorphic(self, rng):
        graphs = [random_graph(rng, 2, 5, connected=True) for _ in range(45)]
        for a, b in itertools.combinations(graphs, 2):
            same = min_dfs_code(a) == min_dfs_code(b)
            iso = nx.is_isomorphic(
                to_networkx(a), to_networkx(b), node_match=nx_label_match
            )
            assert same == iso


class TestCodeGraphRoundtrip:
    def test_roundtrip_reconstruction(self, rng):
        for _ in range(60):
            graph = random_graph(rng, 2, 6, connected=True)
            code = min_dfs_code(graph)
            rebuilt = dfs_code_graph(code)
            assert min_dfs_code(rebuilt) == code
            assert rebuilt.order == graph.order and rebuilt.size == graph.size

    def test_empty_code_rejected(self):
        with pytest.raises(GraphError):
            dfs_code_graph(())

    def test_inconsistent_labels_rejected(self):
        with pytest.raises(GraphError):
            dfs_code_graph(((0, 1, "A", "B"), (1, 2, "X", "C")))

    def test_sparse_indexes_rejected(self):
        with pytest.raises(GraphError):
            dfs_code_graph(((0, 5, "A", "B"),))


class TestIsMinAndRightmostPath:
    def test_min_code_is_min(self, rng):
        for _ in range(40):
            graph = random_graph(rng, 2, 6, connected=True)
            assert is_min_dfs_code(min_dfs_code(graph))

    def test_non_minimal_code_detected(self):
        # Path A-B-C described starting from the wrong end.
        code = ((0, 1, "C", "B"), (1, 2, "B", "A"))
        assert not is_min_dfs_code(code)

    def test_rightmost_path_of_path_code(self):
        code = min_dfs_code(path_graph("ABC"))
        assert rightmost_path(code) == (0, 1, 2)

    def test_rightmost_path_ignores_backward_edges(self):
        code = min_dfs_code(triangle())
        assert rightmost_path(code) == (0, 1, 2)

    def test_rightmost_path_after_branch(self):
        # Star with distinct leaf labels: code forks at the root.
        code = min_dfs_code(Graph("ABC", [(0, 1), (0, 2)]))
        path = rightmost_path(code)
        assert path[0] == 0
        assert path[-1] == 2  # last-added leaf is rightmost

    def test_cycle_codes_distinct_from_paths(self):
        assert min_dfs_code(cycle_graph("AAAA")) != min_dfs_code(path_graph("AAAA"))
