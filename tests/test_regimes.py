"""Regime-polymorphic query contract: wire stability and answer laws.

Two families of guarantees:

1. **Wire stability** — a transactional ``QueryResult`` pickles to the
   exact bytes it produced before the regime fields existed (pinned hex
   per protocol), and legacy 4-field payloads load with the defaults
   ``regime="transactional"`` / ``domains=None``.  Sealed benchmark
   records from earlier runs must keep deserializing unchanged.
2. **Answer laws over both regimes × every index class** — candidates
   are a superset of true answers (no false negatives), and verified
   answers equal the naive oracle's, whether answers are graph ids
   (transactional) or embedding roots (single-graph).
"""

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.generators.graphgen import GraphGenConfig, generate_dataset
from repro.generators.queries import generate_queries
from repro.generators.rmat import RMATConfig, generate_massive_dataset
from repro.indexes import (
    SINGLE_GRAPH,
    TRANSACTIONAL,
    CNIIndex,
    CTIndex,
    GCodeIndex,
    GIndex,
    GraphGrepSXIndex,
    GrapesIndex,
    NaiveIndex,
    TreeDeltaIndex,
)
from repro.indexes.base import QueryResult
from repro.isomorphism.decompose import embedding_root

INDEX_FACTORIES = {
    "naive": lambda: NaiveIndex(),
    "ggsx": lambda: GraphGrepSXIndex(max_path_edges=3),
    "grapes": lambda: GrapesIndex(max_path_edges=3, workers=2),
    "ctindex": lambda: CTIndex(fingerprint_bits=512, feature_edges=3),
    "gcode": lambda: GCodeIndex(),
    "gindex": lambda: GIndex(max_fragment_edges=4, support_ratio=0.2),
    "tree+delta": lambda: TreeDeltaIndex(max_feature_edges=4, support_ratio=0.2),
    "cni": lambda: CNIIndex(mask_bits=64, radius=1),
}

# Fragment mining on a single dense R-MAT graph is exponential in the
# feature-edge cap; trim the miners so the fixture builds in seconds.
_SINGLE_GRAPH_OVERRIDES = {
    "ctindex": lambda: CTIndex(fingerprint_bits=256, feature_edges=2),
    "gindex": lambda: GIndex(max_fragment_edges=3, support_ratio=0.2),
    "tree+delta": lambda: TreeDeltaIndex(max_feature_edges=3, support_ratio=0.2),
}

# pickle.dumps(QueryResult(frozenset({3, 1, 2}), frozenset({1, 2}), 0.5, 0.25))
# captured at PR 9, before the regime/domains fields existed.  These pins
# are the compatibility contract for sealed benchmark records.
_PICKLE_PINS = {
    2: (
        "800263726570726f2e696e64657865732e626173650a5175657279526573756c"
        "740a7100298171015d710228635f5f6275696c74696e5f5f0a66726f7a656e73"
        "65740a71035d7104284b014b024b036585710552710668035d7107284b014b02"
        "65857108527109473fe0000000000000473fd000000000000065622e"
    ),
    3: (
        "800363726570726f2e696e64657865732e626173650a5175657279526573756c"
        "740a7100298171015d710228636275696c74696e730a66726f7a656e7365740a"
        "71035d7104284b014b024b036585710552710668035d7107284b014b02658571"
        "08527109473fe0000000000000473fd000000000000065622e"
    ),
    4: (
        "80049550000000000000008c12726570726f2e696e64657865732e6261736594"
        "8c0b5175657279526573756c749493942981945d9428284b014b024b03919428"
        "4b014b029194473fe0000000000000473fd000000000000065622e"
    ),
    5: (
        "80059550000000000000008c12726570726f2e696e64657865732e6261736594"
        "8c0b5175657279526573756c749493942981945d9428284b014b024b03919428"
        "4b014b029194473fe0000000000000473fd000000000000065622e"
    ),
}


class TestWireStability:
    @pytest.mark.parametrize("protocol", sorted(_PICKLE_PINS))
    def test_transactional_bytes_pinned(self, protocol):
        result = QueryResult(frozenset({3, 1, 2}), frozenset({1, 2}), 0.5, 0.25)
        assert pickle.dumps(result, protocol=protocol).hex() == _PICKLE_PINS[protocol]

    @pytest.mark.parametrize("protocol", sorted(_PICKLE_PINS))
    def test_legacy_payload_loads_with_defaults(self, protocol):
        loaded = pickle.loads(bytes.fromhex(_PICKLE_PINS[protocol]))
        assert loaded.candidates == frozenset({1, 2, 3})
        assert loaded.answers == frozenset({1, 2})
        assert loaded.regime == TRANSACTIONAL
        assert loaded.domains is None

    def test_single_graph_result_round_trips(self):
        result = QueryResult(
            frozenset({0, 4}),
            frozenset({4}),
            0.1,
            0.2,
            regime=SINGLE_GRAPH,
            domains=(frozenset({0, 4}), frozenset({1})),
        )
        loaded = pickle.loads(pickle.dumps(result))
        assert loaded == result
        assert loaded.embedding_roots == frozenset({4})

    def test_embedding_roots_guards_regime(self):
        result = QueryResult(frozenset({1}), frozenset({1}), 0.0, 0.0)
        with pytest.raises(ValueError, match="single-graph"):
            result.embedding_roots


@pytest.fixture(scope="module")
def transactional_dataset():
    config = GraphGenConfig(
        num_graphs=25, mean_nodes=11, mean_density=0.22, num_labels=4, nodes_stddev=3
    )
    return generate_dataset(config, seed=19)


@pytest.fixture(scope="module")
def massive_dataset():
    config = RMATConfig(scale=7, edge_factor=4, num_labels=6)
    return generate_massive_dataset(config, seed=19)


@pytest.fixture(scope="module")
def built(transactional_dataset, massive_dataset):
    out = {}
    for name, factory in INDEX_FACTORIES.items():
        for regime, dataset in (
            (TRANSACTIONAL, transactional_dataset),
            (SINGLE_GRAPH, massive_dataset),
        ):
            if regime == SINGLE_GRAPH:
                factory = _SINGLE_GRAPH_OVERRIDES.get(name, factory)
            index = factory()
            index.build(dataset)
            out[name, regime] = index
    return out


@pytest.fixture(scope="module")
def oracle_answers(built, transactional_dataset, massive_dataset):
    answers = {}
    for regime, dataset in (
        (TRANSACTIONAL, transactional_dataset),
        (SINGLE_GRAPH, massive_dataset),
    ):
        oracle = built["naive", regime]
        for size in (3, 4, 5):
            for seed in range(3):
                for i, query in enumerate(generate_queries(dataset, 2, size, seed=seed)):
                    key = (regime, size, seed, i)
                    answers[key] = (query, oracle.query(query, regime=regime).answers)
    return answers


@pytest.mark.parametrize("name", sorted(INDEX_FACTORIES))
@pytest.mark.parametrize("regime", [TRANSACTIONAL, SINGLE_GRAPH])
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    size=st.sampled_from([3, 4, 5]),
    seed=st.integers(min_value=0, max_value=2),
    pick=st.integers(min_value=0, max_value=1),
)
def test_candidate_superset_and_answer_equivalence(
    name, regime, built, oracle_answers, size, seed, pick
):
    query, truth = oracle_answers[regime, size, seed, pick]
    result = built[name, regime].query(query, regime=regime)
    assert result.regime == regime
    assert truth <= result.candidates, (
        f"{name}/{regime}: false negatives {truth - result.candidates}"
    )
    assert result.answers == truth
    assert result.answers <= result.candidates


@pytest.mark.parametrize("name", sorted(INDEX_FACTORIES))
def test_single_graph_domains_cover_answers(name, built, massive_dataset):
    index = built[name, SINGLE_GRAPH]
    for query in generate_queries(massive_dataset, 3, 4, seed=5):
        result = index.query(query, regime=SINGLE_GRAPH)
        assert result.domains is not None
        assert len(result.domains) == query.order
        root = embedding_root(query, massive_dataset[0])
        assert result.candidates == result.domains[root]
        assert result.embedding_roots <= result.domains[root]


def test_cni_domains_subset_of_naive(built, massive_dataset):
    cni = built["cni", SINGLE_GRAPH]
    naive = built["naive", SINGLE_GRAPH]
    for query in generate_queries(massive_dataset, 3, 5, seed=9):
        cni_result = cni.query(query, regime=SINGLE_GRAPH)
        naive_result = naive.query(query, regime=SINGLE_GRAPH)
        for cni_dom, naive_dom in zip(cni_result.domains, naive_result.domains):
            assert cni_dom <= naive_dom
        assert cni_result.answers == naive_result.answers


def test_unknown_regime_rejected(built):
    from repro.graphs.graph import Graph

    index = built["naive", TRANSACTIONAL]
    q = Graph(["A", "A"], [(0, 1)])
    with pytest.raises(ValueError, match="regime"):
        index.query(q, regime="nonsense")
