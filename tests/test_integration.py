"""End-to-end integration: generate → persist → load → index → query.

Exercises the whole public API surface the way a downstream user
would, including dataset round-trips through the text format and the
consistency of all methods over the loaded data.
"""

import pytest

from repro import (
    ALL_INDEX_CLASSES,
    GraphGenConfig,
    NaiveIndex,
    dataset_statistics,
    generate_dataset,
    generate_queries,
    make_real_dataset,
)
from repro.graphs.io import read_dataset, write_dataset


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    """Generate, persist and reload a dataset; build every index on the
    reloaded copy."""
    config = GraphGenConfig(
        num_graphs=24, mean_nodes=12, mean_density=0.18, num_labels=4
    )
    original = generate_dataset(config, seed=77)
    path = tmp_path_factory.mktemp("io") / "dataset.gfd"
    write_dataset(original, path)
    reloaded = read_dataset(path)
    queries = generate_queries(reloaded, 6, 5, seed=1)
    indexes = {}
    configs = {
        "ggsx": {"max_path_edges": 3},
        "grapes": {"max_path_edges": 3, "workers": 2},
        "ctindex": {"fingerprint_bits": 512, "feature_edges": 3},
        "gindex": {"max_fragment_edges": 4, "support_ratio": 0.25},
        "tree+delta": {"max_feature_edges": 4, "support_ratio": 0.25},
        "gcode": {},
        "naive": {},
        "cni": {"mask_bits": 64, "radius": 1},
    }
    for name, cls in ALL_INDEX_CLASSES.items():
        index = cls(**configs[name])
        index.build(reloaded)
        indexes[name] = index
    return original, reloaded, queries, indexes


class TestEndToEnd:
    def test_roundtrip_preserves_statistics(self, pipeline):
        original, reloaded, _, _ = pipeline
        a = dataset_statistics(original)
        b = dataset_statistics(reloaded)
        assert a.num_graphs == b.num_graphs
        assert a.avg_edges == b.avg_edges
        assert a.avg_density == pytest.approx(b.avg_density)
        assert a.num_labels == b.num_labels

    def test_all_methods_agree_on_loaded_data(self, pipeline):
        _, _, queries, indexes = pipeline
        for query in queries:
            answer_sets = {
                name: index.query(query).answers for name, index in indexes.items()
            }
            reference = answer_sets["naive"]
            for name, answers in answer_sets.items():
                assert answers == reference, f"{name} diverged from the oracle"

    def test_filtering_monotone_in_answers(self, pipeline):
        _, _, queries, indexes = pipeline
        for query in queries:
            truth = indexes["naive"].query(query).answers
            for name, index in indexes.items():
                assert truth <= index.filter(query)

    def test_index_sizes_ordering(self, pipeline):
        """§6: fixed-width encodings smallest, location tries largest."""
        _, _, _, indexes = pipeline
        sizes = {
            name: index.size_bytes()
            for name, index in indexes.items()
            if name != "naive"
        }
        assert sizes["ctindex"] == min(sizes.values())
        assert sizes["grapes"] > sizes["ggsx"]


class TestRealStandInsEndToEnd:
    def test_query_pipeline_on_every_stand_in(self):
        for name in ("AIDS", "PDBS", "PCM", "PPI"):
            dataset = make_real_dataset(name, scale=0.02, seed=1)
            queries = generate_queries(dataset, 2, 4, seed=2)
            oracle = NaiveIndex()
            oracle.build(dataset)
            from repro import GraphGrepSXIndex

            index = GraphGrepSXIndex(max_path_edges=3)
            index.build(dataset)
            for query in queries:
                assert index.query(query).answers == oracle.query(query).answers
