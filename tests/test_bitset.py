"""Unit tests for repro.utils.bitset."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitset import Bitset


class TestConstruction:
    def test_new_bitset_is_empty(self):
        assert Bitset(64).popcount() == 0

    def test_width_is_recorded(self):
        assert Bitset(4096).width == 4096

    def test_len_matches_width(self):
        assert len(Bitset(128)) == 128

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            Bitset(0)

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            Bitset(-5)

    def test_initial_value_accepted(self):
        assert Bitset(8, 0b1010).popcount() == 2

    def test_oversized_value_rejected(self):
        with pytest.raises(ValueError):
            Bitset(4, 0b10000)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            Bitset(4, -1)

    def test_from_indices(self):
        bits = Bitset.from_indices(16, [0, 3, 15])
        assert bits.test(0) and bits.test(3) and bits.test(15)
        assert bits.popcount() == 3

    def test_from_indices_out_of_range(self):
        with pytest.raises(IndexError):
            Bitset.from_indices(8, [8])


class TestBitOperations:
    def test_set_and_test(self):
        bits = Bitset(32)
        bits.set(7)
        assert bits.test(7)
        assert not bits.test(6)

    def test_set_is_idempotent(self):
        bits = Bitset(32)
        bits.set(5)
        bits.set(5)
        assert bits.popcount() == 1

    def test_clear(self):
        bits = Bitset(32)
        bits.set(3)
        bits.clear(3)
        assert not bits.test(3)

    def test_clear_unset_bit_is_noop(self):
        bits = Bitset(32)
        bits.clear(3)
        assert bits.popcount() == 0

    def test_index_bounds(self):
        bits = Bitset(8)
        with pytest.raises(IndexError):
            bits.set(8)
        with pytest.raises(IndexError):
            bits.test(-1)

    def test_indices_roundtrip(self):
        positions = [1, 5, 6, 31]
        bits = Bitset.from_indices(32, positions)
        assert list(bits.indices()) == positions


class TestContainment:
    """The CT-Index filtering operation."""

    def test_contains_empty(self):
        assert Bitset(16, 0b1011).contains(Bitset(16))

    def test_contains_subset(self):
        assert Bitset(16, 0b1011).contains(Bitset(16, 0b0011))

    def test_contains_itself(self):
        bits = Bitset(16, 0b1011)
        assert bits.contains(bits)

    def test_does_not_contain_superset(self):
        assert not Bitset(16, 0b0011).contains(Bitset(16, 0b1011))

    def test_disjoint_not_contained(self):
        assert not Bitset(16, 0b0011).contains(Bitset(16, 0b0100))

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            Bitset(16).contains(Bitset(8))


class TestOperators:
    def test_and(self):
        assert (Bitset(8, 0b1100) & Bitset(8, 0b0110)).value == 0b0100

    def test_or(self):
        assert (Bitset(8, 0b1100) | Bitset(8, 0b0110)).value == 0b1110

    def test_xor(self):
        assert (Bitset(8, 0b1100) ^ Bitset(8, 0b0110)).value == 0b1010

    def test_equality(self):
        assert Bitset(8, 3) == Bitset(8, 3)
        assert Bitset(8, 3) != Bitset(8, 4)
        assert Bitset(8, 3) != Bitset(16, 3)

    def test_hashable(self):
        assert len({Bitset(8, 3), Bitset(8, 3), Bitset(8, 4)}) == 2

    def test_operators_do_not_mutate(self):
        left, right = Bitset(8, 0b1100), Bitset(8, 0b0110)
        _ = left & right
        assert left.value == 0b1100 and right.value == 0b0110


class TestSerialization:
    def test_bytes_roundtrip(self):
        bits = Bitset.from_indices(100, [0, 64, 99])
        assert Bitset.from_bytes(100, bits.to_bytes()) == bits

    def test_nbytes_rounds_up(self):
        assert Bitset(9).nbytes() == 2
        assert Bitset(8).nbytes() == 1

    def test_saturation(self):
        bits = Bitset.from_indices(10, range(5))
        assert bits.saturation() == pytest.approx(0.5)

    def test_copy_is_independent(self):
        bits = Bitset(8)
        duplicate = bits.copy()
        duplicate.set(1)
        assert bits.popcount() == 0


@given(
    st.sets(st.integers(min_value=0, max_value=255), max_size=40),
    st.sets(st.integers(min_value=0, max_value=255), max_size=40),
)
def test_contains_agrees_with_set_inclusion(a, b):
    """Property: fingerprint containment == set inclusion of bit indices."""
    bits_a = Bitset.from_indices(256, a)
    bits_b = Bitset.from_indices(256, b)
    assert bits_a.contains(bits_b) == (b <= a)


@given(st.sets(st.integers(min_value=0, max_value=63), max_size=20))
def test_popcount_matches_index_count(indices):
    assert Bitset.from_indices(64, indices).popcount() == len(indices)
