"""Adaptive scheduling and per-query batching: ordering + determinism.

The scheduler's contract has two halves:

* **longest-first submission** — cells (or batches) are handed to the
  pool in descending estimated cost, stable on ties;
* **submission-deterministic merge** — no matter which workers finish
  first, and no matter what submission order the scheduler chose, the
  merged results are identical to a sequential run, in the sequential
  run's order.
"""

from __future__ import annotations

import random

import pytest

from repro.core.arena import DatasetArena, share_task
from repro.core.experiments import nodes_sweep
from repro.core.metrics import QueryRecord, summarize_records, summarize_results
from repro.core.parallel import ParallelRunner
from repro.core.presets import CI_PROFILE
from repro.core.runner import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    CellTask,
    run_cell,
)
from repro.core.scheduling import (
    clear_index_cache,
    estimate_batch_cost,
    estimate_cost,
    longest_first,
    merge_batches,
    run_batch,
    split_cell,
)
from repro.core.serialization import canonical_cell
from repro.generators.graphgen import GraphGenConfig, generate_dataset
from repro.generators.queries import generate_queries

METHOD_CONFIGS = {
    "naive": None,
    "ggsx": {"max_path_edges": 2},
    "ctindex": {"fingerprint_bits": 256, "feature_edges": 3},
    "gcode": {"path_depth": 2, "top_eigenvalues": 2, "counter_buckets": 16},
}


@pytest.fixture(scope="module")
def dataset():
    config = GraphGenConfig(
        num_graphs=18, mean_nodes=10, mean_density=0.2, num_labels=4
    )
    return generate_dataset(config, seed=23)


@pytest.fixture(scope="module")
def workloads(dataset):
    return {
        3: generate_queries(dataset, 5, 3, seed=3),
        5: generate_queries(dataset, 4, 5, seed=5),
    }


def make_task(dataset, workloads, method="ggsx", key=None, **budgets):
    return CellTask(
        key=key or ("d0", method),
        method=method,
        dataset=dataset,
        workloads=workloads,
        method_config=METHOD_CONFIGS.get(method),
        **budgets,
    )


# ----------------------------------------------------------------------
# longest-first ordering
# ----------------------------------------------------------------------


class TestLongestFirst:
    def test_orders_by_descending_cost(self):
        assert longest_first([3.0, 1.0, 5.0, 4.0]) == [2, 3, 0, 1]

    def test_stable_on_ties(self):
        assert longest_first([2.0, 5.0, 5.0, 2.0]) == [1, 2, 0, 3]

    def test_empty_and_single(self):
        assert longest_first([]) == []
        assert longest_first([7.0]) == [0]

    def test_cost_grows_with_dataset_and_queries(self, dataset, workloads):
        small = dataset.subset(range(4))
        big_task = make_task(dataset, workloads)
        small_task = make_task(small, workloads)
        assert estimate_cost(big_task) > estimate_cost(small_task)
        light = make_task(dataset, {3: workloads[3][:1]})
        assert estimate_cost(big_task) > estimate_cost(light)

    def test_shared_task_cost_matches_plain(self, dataset, workloads):
        task = make_task(dataset, workloads)
        with DatasetArena.create(dataset) as arena:
            shared = share_task(task, arena.handle)
            assert estimate_cost(shared) == estimate_cost(task)

    def test_batch_costs_sum_below_cell_cost(self, dataset, workloads):
        task = make_task(dataset, workloads)
        batches = split_cell(task, 3)
        for batch in batches:
            assert 0 < estimate_batch_cost(batch) < estimate_cost(task)

    def test_runner_respects_submission_order_sequentially(self):
        """With jobs=1 the order permutation IS the execution order,
        observable through the progress callback."""
        executed = []
        runner = ParallelRunner(jobs=1)
        runner.map(
            _identity,
            ["a", "b", "c", "d"],
            progress=lambda done, total, item: executed.append(item),
            order=[2, 0, 3, 1],
        )
        assert executed == ["c", "a", "d", "b"]

    def test_map_returns_results_in_item_order_despite_order(self):
        items = list(range(7))
        for jobs in (1, 2):
            runner = ParallelRunner(jobs=jobs)
            shuffled = list(items)
            random.Random(5).shuffle(shuffled)
            assert runner.map(_square, items, order=shuffled) == [
                i * i for i in items
            ]

    def test_map_rejects_non_permutation_order(self):
        with pytest.raises(ValueError, match="permutation"):
            ParallelRunner(jobs=1).map(_square, [1, 2, 3], order=[0, 0, 1])


def _identity(x):
    return x


def _square(x):
    return x * x


# ----------------------------------------------------------------------
# splitting cells into query batches
# ----------------------------------------------------------------------


class TestSplitCell:
    def test_split_covers_every_query_contiguously(self, dataset, workloads):
        task = make_task(dataset, workloads)
        batches = split_cell(task, 3)
        assert len(batches) == 3
        assert all(b.num_batches == 3 and b.sizes == (3, 5) for b in batches)
        for size, queries in workloads.items():
            parts = sorted(
                (p for b in batches for p in b.parts if p.size == size),
                key=lambda p: p.start,
            )
            reassembled = []
            for part in parts:
                assert part.start == len(reassembled)
                reassembled.extend(part.queries)
            assert reassembled == list(queries)

    def test_split_is_deterministic(self, dataset, workloads):
        task = make_task(dataset, workloads)
        first = split_cell(task, 4)
        second = split_cell(task, 4)
        assert [b.parts for b in first] == [b.parts for b in second]

    def test_more_batches_than_queries_collapses(self, dataset, workloads):
        tiny = {3: workloads[3][:2]}
        batches = split_cell(make_task(dataset, tiny), 8)
        assert len(batches) == 2

    def test_no_queries_yields_one_build_only_batch(self, dataset):
        (batch,) = split_cell(make_task(dataset, {}), 4)
        assert batch.parts == () and batch.num_batches == 1

    def test_dataset_key_defaults_to_fingerprint(self, dataset, workloads):
        from repro.graphs.dataset import dataset_fingerprint

        task = make_task(dataset, workloads)
        (first, *_) = split_cell(task, 2)
        assert first.dataset_key == dataset_fingerprint(dataset)


# ----------------------------------------------------------------------
# batch execution + deterministic merge
# ----------------------------------------------------------------------


class TestBatchMerge:
    @pytest.mark.parametrize("method", list(METHOD_CONFIGS))
    def test_merged_cell_matches_sequential(self, dataset, workloads, method):
        clear_index_cache()
        task = make_task(dataset, workloads, method=method)
        sequential = run_cell(task)
        batches = split_cell(task, 3)
        outcomes = [run_batch(batch) for batch in batches]
        merged = merge_batches(batches, outcomes)
        assert canonical_cell(merged) == canonical_cell(sequential)

    def test_merge_ignores_completion_order(self, dataset, workloads):
        clear_index_cache()
        task = make_task(dataset, workloads)
        batches = split_cell(task, 3)
        outcomes = [run_batch(batch) for batch in batches]
        reference = merge_batches(batches, outcomes)
        for seed in range(4):
            pairs = list(zip(batches, outcomes))
            random.Random(seed).shuffle(pairs)
            shuffled = merge_batches(
                [p[0] for p in pairs], [p[1] for p in pairs]
            )
            assert canonical_cell(shuffled) == canonical_cell(reference)

    def test_build_failure_statuses_merge(self, dataset, workloads):
        clear_index_cache()
        task = make_task(
            dataset, workloads, method="ggsx", build_budget_seconds=0.0
        )
        batches = split_cell(task, 2)
        merged = merge_batches(batches, [run_batch(b) for b in batches])
        sequential = run_cell(task)
        assert merged.build_status == STATUS_TIMEOUT == sequential.build_status
        assert not merged.per_size and not sequential.per_size

    def test_query_timeout_statuses_merge(self, dataset, workloads):
        clear_index_cache()
        task = make_task(
            dataset, workloads, method="ggsx", query_budget_seconds=0.0
        )
        batches = split_cell(task, 2)
        merged = merge_batches(batches, [run_batch(b) for b in batches])
        assert merged.build_status == STATUS_OK
        assert merged.per_size
        assert all(
            s.status == STATUS_TIMEOUT for s in merged.per_size.values()
        )

    def test_divergent_build_outcomes_fail_the_whole_cell(
        self, dataset, workloads
    ):
        """A budget sitting right at the build time can succeed in one
        worker and time out in another; the merge must not emit partial
        query statistics."""
        from repro.core.scheduling import BatchOutcome, PartOutcome
        from repro.core.metrics import QueryRecord

        clear_index_cache()
        task = make_task(dataset, workloads)
        batches = split_cell(task, 2)
        ok_records = tuple(
            QueryRecord(0.0, 0.0, 0.0, 1, 1, 0.0) for _ in batches[0].parts[0].queries
        )
        mixed = [
            BatchOutcome(
                key=task.key,
                batch_index=0,
                build_status=STATUS_OK,
                build_seconds=0.1,
                index_bytes=10,
                parts=(PartOutcome(3, 0, STATUS_OK, ok_records),),
            ),
            BatchOutcome(
                key=task.key, batch_index=1, build_status=STATUS_TIMEOUT
            ),
        ]
        merged = merge_batches(batches, mixed)
        assert merged.build_status == STATUS_TIMEOUT
        assert not merged.per_size  # no partial statistics leak through

    def test_worker_index_cache_builds_once(self, dataset, workloads):
        """All batches of a cell share one worker-side build (via the
        budget-keyed build memo, as in PR 2)."""
        clear_index_cache()
        from repro.core import scheduling

        task = make_task(dataset, workloads)
        batches = split_cell(task, 3)
        outcomes = [run_batch(batch) for batch in batches]
        assert len(scheduling._BUILD_MEMO) == 1
        # Without an explicit --index-store the artifact store stays
        # out of the path entirely: no provenance, no budget crossing.
        assert all(o.provenance == {} for o in outcomes)
        clear_index_cache()
        assert len(scheduling._BUILD_MEMO) == 0

    def test_store_dir_builds_once_and_serves_cold_process(
        self, dataset, workloads, tmp_path
    ):
        """With a store directory, one build is written through; a cold
        process (cleared memo + memory tier) reuses it with provenance."""
        clear_index_cache()
        from repro.indexes.store import shared_store

        from dataclasses import replace

        task = replace(
            make_task(dataset, workloads), index_store_dir=str(tmp_path)
        )
        batches = split_cell(task, 3)
        outcomes = [run_batch(batch) for batch in batches]
        assert shared_store(str(tmp_path)).stats.puts == 1
        # The building run reports fresh provenance on every batch (the
        # memo serves later batches the same entry).
        assert all(o.provenance["reused"] is False for o in outcomes)
        clear_index_cache()  # "new invocation": only the disk tier left
        warm = [run_batch(batch) for batch in batches]
        assert all(o.provenance["reused"] is True for o in warm)
        assert {o.provenance["artifact"] for o in warm} == {
            outcomes[0].provenance["artifact"]
        }
        from repro.core.serialization import canonical_cell

        assert canonical_cell(merge_batches(batches, warm)) == canonical_cell(
            merge_batches(batches, outcomes)
        )
        clear_index_cache()

    def test_merge_prefers_fresh_build_provenance(self, dataset, workloads):
        """With jobs > 1 the build race can leave batch 0 as a store
        hit while a sibling actually built: the merged cell must report
        fresh, or a cold run would masquerade as warm."""
        from repro.core.scheduling import BatchOutcome

        clear_index_cache()
        task = make_task(dataset, workloads)
        batches = split_cell(task, 2)
        outcomes = [
            BatchOutcome(
                key=task.key,
                batch_index=0,
                build_status=STATUS_OK,
                build_seconds=0.5,
                index_bytes=10,
                provenance={"reused": True, "artifact": "a"},
            ),
            BatchOutcome(
                key=task.key,
                batch_index=1,
                build_status=STATUS_OK,
                build_seconds=0.5,
                index_bytes=10,
                provenance={"reused": False, "artifact": "a"},
            ),
        ]
        merged = merge_batches(batches, outcomes)
        assert merged.provenance["reused"] is False

    def test_programming_errors_propagate(self, dataset, workloads):
        clear_index_cache()
        task = CellTask(
            key=("d0", "nope"),
            method="no_such_method",
            dataset=dataset,
            workloads=workloads,
        )
        (batch, *_) = split_cell(task, 2)
        with pytest.raises(ValueError, match="unknown method"):
            run_batch(batch)

    def test_merge_requires_batches(self):
        with pytest.raises(ValueError, match="at least one batch"):
            merge_batches([], [])


# ----------------------------------------------------------------------
# record aggregation mirrors the sequential arithmetic
# ----------------------------------------------------------------------


class TestRecordAggregation:
    def test_summarize_records_empty(self):
        stats = summarize_records([])
        assert stats == summarize_results([])

    def test_summarize_records_matches_results(self, dataset, workloads):
        from repro.core.metrics import record_of
        from repro.core.runner import make_method

        index = make_method("ggsx", METHOD_CONFIGS["ggsx"])
        index.build(dataset)
        results = [index.query(q) for q in workloads[3]]
        records = [record_of(r) for r in results]
        by_records = summarize_records(records)
        by_results = summarize_results(results)
        assert by_records == by_results

    def test_record_is_scalar_only(self):
        record = QueryRecord(0.1, 0.06, 0.04, 5, 2, 0.6)
        assert record.num_candidates == 5 and record.num_answers == 2


# ----------------------------------------------------------------------
# sweep-level: merged order is submission-deterministic
# ----------------------------------------------------------------------


class TestSweepOrdering:
    def test_batched_sweep_order_matches_sequential(self):
        from dataclasses import replace

        profile = replace(
            CI_PROFILE,
            nodes_values=(8, 12),
            default_num_graphs=10,
            default_nodes=10,
            default_density=0.2,
            default_labels=3,
            query_sizes=(3,),
            queries_per_size=4,
            # Methods with wildly different speeds, so completion order
            # differs from submission order almost surely.
            method_configs={
                "ggsx": {"max_path_edges": 2},
                "naive": {},
                "ctindex": {"fingerprint_bits": 256, "feature_edges": 3},
            },
        )
        sequential = nodes_sweep(profile, seed=3, jobs=1)
        batched = nodes_sweep(
            profile, seed=3, jobs=2, shared_mem=True, batch_queries=True
        )
        assert list(batched.cells) == list(sequential.cells)
