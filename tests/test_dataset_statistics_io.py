"""Unit tests for GraphDataset, statistics (Table 1) and text I/O."""

import math

import pytest

from repro.graphs.dataset import GraphDataset
from repro.graphs.graph import Graph, GraphError
from repro.graphs.io import dumps_dataset, loads_dataset, read_dataset, write_dataset
from repro.graphs.statistics import dataset_statistics, graph_statistics

from testkit import path_graph, triangle


class TestDataset:
    def test_add_assigns_dense_ids(self):
        dataset = GraphDataset()
        ids = [dataset.add(path_graph("AB")) for _ in range(3)]
        assert ids == [0, 1, 2]
        assert dataset[1].graph_id == 1

    def test_constructor_reassigns_ids(self):
        existing = path_graph("AB")
        existing.graph_id = 99
        dataset = GraphDataset([existing])
        assert dataset[0].graph_id == 0

    def test_len_and_iteration(self):
        dataset = GraphDataset([path_graph("AB"), triangle()])
        assert len(dataset) == 2
        assert [g.order for g in dataset] == [2, 3]

    def test_all_ids_fresh_set(self):
        dataset = GraphDataset([path_graph("AB")])
        ids = dataset.all_ids()
        ids.add(99)
        assert dataset.all_ids() == {0}

    def test_distinct_labels_union(self):
        dataset = GraphDataset([path_graph("AB"), path_graph("BC")])
        assert dataset.distinct_labels() == {"A", "B", "C"}

    def test_totals(self):
        dataset = GraphDataset([path_graph("AB"), triangle()])
        assert dataset.total_vertices() == 5
        assert dataset.total_edges() == 4

    def test_subset_re_densifies_ids(self):
        dataset = GraphDataset([path_graph("AB"), triangle(), path_graph("CD")])
        subset = dataset.subset([2, 0])
        assert len(subset) == 2
        assert subset[0].label(0) == "C"
        assert subset[0].graph_id == 0

    def test_name_in_repr(self):
        assert "demo" in repr(GraphDataset(name="demo"))


class TestGraphStatistics:
    def test_per_graph_bundle(self):
        stats = graph_statistics(triangle("ABC"))
        assert stats.num_vertices == 3
        assert stats.num_edges == 3
        assert stats.density == pytest.approx(1.0)
        assert stats.average_degree == pytest.approx(2.0)
        assert stats.num_distinct_labels == 3
        assert stats.is_connected

    def test_dataset_statistics_counts(self):
        dataset = GraphDataset(
            [path_graph("AB"), Graph("AB"), triangle("AAA")], name="mini"
        )
        stats = dataset_statistics(dataset)
        assert stats.num_graphs == 3
        assert stats.num_disconnected == 1
        assert stats.num_labels == 2
        assert stats.avg_vertices == pytest.approx((2 + 2 + 3) / 3)
        assert stats.avg_edges == pytest.approx((1 + 0 + 3) / 3)

    def test_std_vertices(self):
        dataset = GraphDataset([Graph(["A"] * 2), Graph(["A"] * 4)])
        stats = dataset_statistics(dataset)
        assert stats.std_vertices == pytest.approx(1.0)
        assert not math.isnan(stats.std_vertices)

    def test_empty_dataset_reports_zeros(self):
        stats = dataset_statistics(GraphDataset(name="empty"))
        assert stats.num_graphs == 0
        assert stats.avg_density == 0.0

    def test_as_row_has_table1_columns(self):
        row = dataset_statistics(GraphDataset([triangle()], name="t")).as_row()
        for column in ("#graphs", "#labels", "avg #nodes", "avg density", "avg degree"):
            assert column in row

    def test_name_override(self):
        stats = dataset_statistics(GraphDataset(name="x"), name="AIDS")
        assert stats.name == "AIDS"


class TestIO:
    def make_dataset(self):
        return GraphDataset([path_graph("ABC"), triangle("XYZ"), Graph(["Q"])])

    def test_roundtrip_string(self):
        dataset = self.make_dataset()
        restored = loads_dataset(dumps_dataset(dataset))
        assert len(restored) == len(dataset)
        for original, loaded in zip(dataset, restored):
            assert loaded.order == original.order
            assert sorted(loaded.edges()) == sorted(original.edges())
            assert list(loaded.labels) == [str(l) for l in original.labels]

    def test_roundtrip_file(self, tmp_path):
        dataset = self.make_dataset()
        path = tmp_path / "mini.gfd"
        write_dataset(dataset, path)
        restored = read_dataset(path)
        assert len(restored) == 3
        assert restored.name == "mini"

    def test_empty_dataset_roundtrip(self):
        assert len(loads_dataset(dumps_dataset(GraphDataset()))) == 0

    def test_missing_header_rejected(self):
        with pytest.raises(GraphError):
            loads_dataset("3\nA\nB\nC\n0\n")

    def test_bad_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            loads_dataset("#0\nnot_a_number\n")

    def test_truncated_input_rejected(self):
        with pytest.raises(GraphError):
            loads_dataset("#0\n2\nA\n")

    def test_malformed_edge_rejected(self):
        with pytest.raises(GraphError):
            loads_dataset("#0\n2\nA\nB\n1\n0 1 2\n")

    def test_non_integer_edge_rejected(self):
        with pytest.raises(GraphError):
            loads_dataset("#0\n2\nA\nB\n1\nx y\n")

    def test_blank_lines_tolerated(self):
        text = "#0\n\n2\nA\n\nB\n1\n0 1\n\n"
        dataset = loads_dataset(text)
        assert dataset[0].size == 1
