"""Tests for sweep-result JSON persistence and the report CLI."""

from dataclasses import replace

import pytest

from repro.cli import main
from repro.core.experiments import nodes_sweep, real_dataset_experiment
from repro.core.presets import CI_PROFILE
from repro.core.report import render_sweep
from repro.core.serialization import load_sweep, save_sweep, sweep_from_json, sweep_to_json


@pytest.fixture(scope="module")
def tiny_profile():
    return replace(
        CI_PROFILE,
        nodes_values=(8, 12),
        default_num_graphs=8,
        default_nodes=10,
        default_density=0.2,
        default_labels=3,
        query_sizes=(3,),
        queries_per_size=2,
        build_budget_seconds=10.0,
        query_budget_seconds=10.0,
        real_dataset_scale=0.01,
        real_dataset_names=("PCM",),
        method_configs={
            "ggsx": {"max_path_edges": 2},
            "gindex": {"max_fragment_edges": 3, "support_ratio": 0.3},
        },
    )


@pytest.fixture(scope="module")
def sweep(tiny_profile):
    return nodes_sweep(tiny_profile)


class TestRoundtrip:
    def test_json_roundtrip_preserves_structure(self, sweep):
        restored = sweep_from_json(sweep_to_json(sweep))
        assert restored.x_name == sweep.x_name
        assert restored.x_values == sweep.x_values
        assert restored.methods == sweep.methods
        assert restored.query_sizes == sweep.query_sizes
        assert set(restored.cells) == set(sweep.cells)

    def test_roundtrip_preserves_measurements(self, sweep):
        restored = sweep_from_json(sweep_to_json(sweep))
        for key, cell in sweep.cells.items():
            other = restored.cells[key]
            assert other.build_status == cell.build_status
            assert other.build_seconds == cell.build_seconds
            assert other.index_bytes == cell.index_bytes
            assert set(other.per_size) == set(cell.per_size)
            for size, stats in cell.per_size.items():
                assert other.per_size[size].status == stats.status
                if stats.stats is not None:
                    assert other.per_size[size].stats == stats.stats

    def test_rendering_identical_after_roundtrip(self, sweep):
        restored = sweep_from_json(sweep_to_json(sweep))
        assert render_sweep(restored, "2") == render_sweep(sweep, "2")

    def test_file_roundtrip(self, sweep, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        assert render_sweep(load_sweep(path), "2") == render_sweep(sweep, "2")

    def test_dataset_stats_roundtrip(self, sweep):
        restored = sweep_from_json(sweep_to_json(sweep))
        for x, stats in sweep.dataset_stats.items():
            assert restored.dataset_stats[x] == stats

    def test_real_experiment_roundtrip(self, tiny_profile):
        result = real_dataset_experiment(tiny_profile, methods=["ggsx"])
        restored = sweep_from_json(sweep_to_json(result))
        assert restored.x_values == ["PCM"]
        assert restored.dataset_stats["PCM"] == result.dataset_stats["PCM"]

    def test_bad_schema_rejected(self):
        with pytest.raises(ValueError):
            sweep_from_json('{"schema": "something-else"}')


class TestReportCli:
    def test_report_renders_saved_sweep(self, sweep, tmp_path, capsys):
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        code = main(["report", str(path), "--figure", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 2(a)" in out and "ggsx" in out

    def test_report_with_plots(self, sweep, tmp_path, capsys):
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        code = main(["report", str(path), "--plot"])
        assert code == 0
        assert "log-y" in capsys.readouterr().out

    def test_report_missing_file(self, capsys):
        assert main(["report", "/no/such.json"]) == 2
        assert "not found" in capsys.readouterr().err

    def test_report_bad_file(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "nope"}')
        assert main(["report", str(path)]) == 2
