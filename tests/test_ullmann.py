"""Tests for the Ullmann verifier (the ablation baseline)."""

import time

import pytest

from repro.graphs.graph import Graph
from repro.isomorphism.ullmann import ullmann_is_subgraph
from repro.isomorphism.vf2 import is_subgraph
from repro.utils.budget import Budget, BudgetExceeded

from testkit import (
    cycle_graph,
    nx_is_monomorphic,
    path_graph,
    random_graph,
    star_graph,
    triangle,
)


class TestBasics:
    def test_single_vertex(self):
        assert ullmann_is_subgraph(Graph(["A"]), path_graph("AB"))

    def test_label_mismatch(self):
        assert not ullmann_is_subgraph(Graph(["Z"]), path_graph("AB"))

    def test_monomorphism_semantics(self):
        # A 3-path embeds into a triangle (extra edges allowed).
        assert ullmann_is_subgraph(path_graph("AAA"), triangle("AAA"))

    def test_triangle_not_in_path(self):
        assert not ullmann_is_subgraph(triangle("AAA"), path_graph("AAA"))

    def test_query_larger_than_data(self):
        assert not ullmann_is_subgraph(path_graph("AAAA"), path_graph("AA"))

    def test_empty_query(self):
        assert ullmann_is_subgraph(Graph([]), path_graph("AB"))

    def test_identity(self):
        graph = cycle_graph("ABCD")
        assert ullmann_is_subgraph(graph, graph)

    def test_injectivity(self):
        assert not ullmann_is_subgraph(Graph("AA"), Graph(["A"]))

    def test_disconnected_query(self):
        assert ullmann_is_subgraph(Graph("AB"), path_graph("AB"))
        assert not ullmann_is_subgraph(Graph("AB"), Graph(["A"]))

    def test_star_into_star(self):
        assert ullmann_is_subgraph(star_graph("C", "HH"), star_graph("C", "HHH"))
        assert not ullmann_is_subgraph(star_graph("C", "HHHH"), star_graph("C", "HHH"))


class TestAgainstOracles:
    def test_agreement_with_vf2_and_networkx(self, rng):
        positives = negatives = 0
        for _ in range(250):
            query = random_graph(rng, 1, 4)
            data = random_graph(rng, 1, 6)
            expected = nx_is_monomorphic(query, data)
            assert ullmann_is_subgraph(query, data) == expected
            assert is_subgraph(query, data) == expected
            positives += expected
            negatives += not expected
        assert positives > 20 and negatives > 20

    def test_extracted_subgraphs_always_found(self, rng):
        for _ in range(50):
            data = random_graph(rng, 3, 7, connected=True)
            vertices = sorted(rng.sample(range(data.order), 3))
            query, _ = data.induced_subgraph(vertices)
            assert ullmann_is_subgraph(query, data)


class TestBudget:
    def test_expired_budget_raises(self, monkeypatch):
        # Ullmann's refinement prunes hard, so force a poll on the very
        # first search node rather than hand-crafting a slow instance.
        import repro.isomorphism.ullmann as ullmann_module

        monkeypatch.setattr(ullmann_module, "_BUDGET_POLL_INTERVAL", 1)
        query = Graph(["X"] * 3, [(0, 1), (1, 2)])
        data = Graph(["X"] * 5, [(i, i + 1) for i in range(4)])
        budget = Budget(0.0)
        time.sleep(0.002)
        with pytest.raises(BudgetExceeded):
            ullmann_is_subgraph(query, data, budget=budget)

    def test_generous_budget_transparent(self):
        assert ullmann_is_subgraph(
            path_graph("AA"), triangle("AAA"), budget=Budget(60.0)
        )


class TestEngineDifferential:
    """Bitset vs set domains: same answers, same search tree.

    The bitset engine promises more than agreement — it explores the
    *identical* search tree (candidates ascending, refinement passes in
    the same order, domains emptied at the same step), so the node
    counters — and therefore budget poll counts — must match exactly.
    """

    def _both(self, query, data, budget=None):
        from repro.isomorphism.ullmann import (
            _BitsetState,
            _State,
            _initial_candidates,
        )

        candidates = _initial_candidates(query, data)
        if candidates is None:
            return None, None
        set_state = _State(query, data, budget)
        set_answer = set_state.search(0, [set(c) for c in candidates], set())
        bit_state = _BitsetState(query, data, budget)
        bit_answer = bit_state.search(0, bit_state.pack(candidates), set())
        assert bit_answer == set_answer
        assert bit_state.nodes == set_state.nodes
        return set_answer, set_state.nodes

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            ullmann_is_subgraph(
                path_graph("AA"), triangle("AAA"), engine="matrix"
            )

    def test_engines_agree_on_answers_and_poll_counts(self, rng):
        from repro.graphs.csr import CSRGraph

        positives = nontrivial = 0
        for _ in range(150):
            query = random_graph(rng, 1, 4)
            data = random_graph(rng, 1, 7)
            expected = ullmann_is_subgraph(query, data, engine="set")
            assert ullmann_is_subgraph(query, data, engine="bitset") == expected
            # Same differential over the CSR core (vectorized initial
            # candidates feed both engines identically).
            csr_data = CSRGraph.from_graph(data)
            assert ullmann_is_subgraph(query, csr_data, engine="set") == expected
            assert ullmann_is_subgraph(query, csr_data, engine="bitset") == expected
            # Budget polls are driven by the node counter: identical
            # node counts == identical poll schedules at any interval.
            answer, nodes = self._both(query, data, budget=Budget(60.0))
            if answer is not None:
                nontrivial += 1
                positives += answer
        assert nontrivial > 40 and positives > 10

    def test_wide_data_graph_crosses_word_boundaries(self, rng):
        # > 64 data vertices forces multi-word domain rows.
        for _ in range(10):
            data = random_graph(rng, 70, 90, connected=True)
            vertices = sorted(rng.sample(range(data.order), 4))
            query, _ = data.induced_subgraph(vertices)
            assert ullmann_is_subgraph(query, data, engine="bitset")
            self._both(query, data, budget=Budget(60.0))

    def test_empty_initial_domain_early_exits(self, monkeypatch):
        """Regression pin: a label with no feasible data vertex returns
        False before either engine allocates domains or searches."""
        from repro.isomorphism import ullmann as ullmann_module
        from repro.isomorphism.ullmann import _initial_candidates

        query = Graph(["A", "Z"], [(0, 1)])
        data = path_graph("AB")  # no 'Z' anywhere
        assert _initial_candidates(query, data) is None

        def explode(*args, **kwargs):
            raise AssertionError("search entered despite empty domain")

        monkeypatch.setattr(ullmann_module._State, "search", explode)
        monkeypatch.setattr(ullmann_module._BitsetState, "search", explode)
        for engine in ("bitset", "set"):
            assert not ullmann_is_subgraph(query, data, engine=engine)

    def test_early_exit_counts_no_nodes(self):
        # Degree-infeasible: 'A' hub needs degree 3, data max is 2.
        query = star_graph("A", "BBB")
        data = path_graph("BAB")
        from repro.isomorphism.ullmann import _initial_candidates

        assert _initial_candidates(query, data) is None
        assert not ullmann_is_subgraph(query, data, engine="bitset")
        assert not ullmann_is_subgraph(query, data, engine="set")
