"""Tests for the Ullmann verifier (the ablation baseline)."""

import time

import pytest

from repro.graphs.graph import Graph
from repro.isomorphism.ullmann import ullmann_is_subgraph
from repro.isomorphism.vf2 import is_subgraph
from repro.utils.budget import Budget, BudgetExceeded

from testkit import (
    cycle_graph,
    nx_is_monomorphic,
    path_graph,
    random_graph,
    star_graph,
    triangle,
)


class TestBasics:
    def test_single_vertex(self):
        assert ullmann_is_subgraph(Graph(["A"]), path_graph("AB"))

    def test_label_mismatch(self):
        assert not ullmann_is_subgraph(Graph(["Z"]), path_graph("AB"))

    def test_monomorphism_semantics(self):
        # A 3-path embeds into a triangle (extra edges allowed).
        assert ullmann_is_subgraph(path_graph("AAA"), triangle("AAA"))

    def test_triangle_not_in_path(self):
        assert not ullmann_is_subgraph(triangle("AAA"), path_graph("AAA"))

    def test_query_larger_than_data(self):
        assert not ullmann_is_subgraph(path_graph("AAAA"), path_graph("AA"))

    def test_empty_query(self):
        assert ullmann_is_subgraph(Graph([]), path_graph("AB"))

    def test_identity(self):
        graph = cycle_graph("ABCD")
        assert ullmann_is_subgraph(graph, graph)

    def test_injectivity(self):
        assert not ullmann_is_subgraph(Graph("AA"), Graph(["A"]))

    def test_disconnected_query(self):
        assert ullmann_is_subgraph(Graph("AB"), path_graph("AB"))
        assert not ullmann_is_subgraph(Graph("AB"), Graph(["A"]))

    def test_star_into_star(self):
        assert ullmann_is_subgraph(star_graph("C", "HH"), star_graph("C", "HHH"))
        assert not ullmann_is_subgraph(star_graph("C", "HHHH"), star_graph("C", "HHH"))


class TestAgainstOracles:
    def test_agreement_with_vf2_and_networkx(self, rng):
        positives = negatives = 0
        for _ in range(250):
            query = random_graph(rng, 1, 4)
            data = random_graph(rng, 1, 6)
            expected = nx_is_monomorphic(query, data)
            assert ullmann_is_subgraph(query, data) == expected
            assert is_subgraph(query, data) == expected
            positives += expected
            negatives += not expected
        assert positives > 20 and negatives > 20

    def test_extracted_subgraphs_always_found(self, rng):
        for _ in range(50):
            data = random_graph(rng, 3, 7, connected=True)
            vertices = sorted(rng.sample(range(data.order), 3))
            query, _ = data.induced_subgraph(vertices)
            assert ullmann_is_subgraph(query, data)


class TestBudget:
    def test_expired_budget_raises(self, monkeypatch):
        # Ullmann's refinement prunes hard, so force a poll on the very
        # first search node rather than hand-crafting a slow instance.
        import repro.isomorphism.ullmann as ullmann_module

        monkeypatch.setattr(ullmann_module, "_BUDGET_POLL_INTERVAL", 1)
        query = Graph(["X"] * 3, [(0, 1), (1, 2)])
        data = Graph(["X"] * 5, [(i, i + 1) for i in range(4)])
        budget = Budget(0.0)
        time.sleep(0.002)
        with pytest.raises(BudgetExceeded):
            ullmann_is_subgraph(query, data, budget=budget)

    def test_generous_budget_transparent(self):
        assert ullmann_is_subgraph(
            path_graph("AA"), triangle("AAA"), budget=Budget(60.0)
        )
