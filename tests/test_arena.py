"""Shared-memory dataset arena: packing, attachment, leaks, equivalence.

Three properties are held here:

1. **Round trip** — any labeled graph dataset survives ``pack → shared
   memory → attach → unpack`` with full structural equality (a
   hypothesis property over random graphs), and the reconstruction is
   *pickle-equivalent*: adjacency sets iterate in the same order as a
   pickle round trip, which is what the engine's byte-identity contract
   rests on.
2. **No leaks** — every segment a dispatch creates is unlinked by the
   time the sweep returns: on normal completion, on worker-side
   programming errors, and on hard worker crashes (``BrokenProcessPool``).
3. **Mode equivalence** — for four index methods spanning trie,
   fingerprint, and spectral designs, a sweep canonicalizes
   byte-identically whether it runs sequentially, through the
   shared-memory arena, or with per-query batching on top.
"""

from __future__ import annotations

import pickle
from dataclasses import replace
from multiprocessing import shared_memory

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arena import (
    ArenaHandle,
    DatasetArena,
    attach_dataset,
    cached_dataset,
    clear_worker_caches,
    live_arenas,
    run_shared_cell,
    share_task,
)
from repro.core.experiments import nodes_sweep
from repro.core.parallel import ParallelRunner, run_cells
from repro.core.presets import CI_PROFILE
from repro.core.runner import STATUS_OK, CellTask, run_cell
from repro.core.serialization import canonical_cell, canonical_json, sweep_digest
from repro.generators.graphgen import GraphGenConfig, generate_dataset
from repro.generators.queries import generate_queries
from repro.graphs.dataset import (
    GraphDataset,
    PackedDatasetReader,
    dataset_fingerprint,
    pack_dataset,
    unpack_dataset,
)
from repro.graphs.graph import Graph
from repro.indexes import ALL_INDEX_CLASSES

from testkit import KillerIndex

#: Four methods spanning trie, fingerprint, and spectral designs plus
#: the exhaustive baseline — the equivalence roster the issue requires.
METHOD_CONFIGS = {
    "naive": None,
    "ggsx": {"max_path_edges": 2},
    "ctindex": {"fingerprint_bits": 256, "feature_edges": 3},
    "gcode": {"path_depth": 2, "top_eigenvalues": 2, "counter_buckets": 16},
}


@pytest.fixture(scope="module")
def dataset():
    config = GraphGenConfig(
        num_graphs=20, mean_nodes=10, mean_density=0.2, num_labels=4
    )
    dataset = generate_dataset(config, seed=11)
    dataset.name = "arena-fixture"
    return dataset


@pytest.fixture(scope="module")
def workloads(dataset):
    return {
        3: generate_queries(dataset, 4, 3, seed=3),
        5: generate_queries(dataset, 3, 5, seed=5),
    }


# ----------------------------------------------------------------------
# flat-array pack / unpack
# ----------------------------------------------------------------------


class TestPackRoundTrip:
    def test_roundtrip_preserves_everything(self, dataset):
        back = unpack_dataset(pack_dataset(dataset))
        assert back.name == dataset.name
        assert len(back) == len(dataset)
        for original, rebuilt in zip(dataset, back):
            assert original == rebuilt
            assert original.graph_id == rebuilt.graph_id

    def test_roundtrip_is_pickle_equivalent(self, dataset):
        """Adjacency sets iterate identically to a pickle round trip —
        the property the byte-identity contract stands on."""
        pickled = pickle.loads(pickle.dumps(dataset))
        packed = unpack_dataset(pack_dataset(dataset))
        for a, b in zip(pickled, packed):
            for v in a.vertices():
                assert list(a.neighbors(v)) == list(b.neighbors(v))

    def test_copy_is_pickle_equivalent(self, dataset):
        """``Graph.copy()`` must honour the same parity contract as pack
        and pickle: adjacency sets rebuilt fresh, inserting neighbors in
        the source's iteration order.  The old implementation rebuilt
        from ``edges()`` order, so a copied dataset packed to different
        bytes than the original's pickle round trip."""
        pickled = pickle.loads(pickle.dumps(dataset))
        copied = GraphDataset([g.copy() for g in dataset], name=dataset.name)
        for a, b in zip(pickled, copied):
            for v in a.vertices():
                assert list(a.neighbors(v)) == list(b.neighbors(v))
        assert pack_dataset(copied) == pack_dataset(pickled)
        assert dataset_fingerprint(copied) == dataset_fingerprint(dataset)

    def test_pack_is_deterministic(self, dataset):
        assert pack_dataset(dataset) == pack_dataset(dataset)
        assert dataset_fingerprint(dataset) == dataset_fingerprint(dataset)

    def test_different_content_different_fingerprint(self, dataset):
        other = dataset.subset(range(len(dataset) - 1))
        assert dataset_fingerprint(other) != dataset_fingerprint(dataset)

    def test_fingerprint_canonical_across_representations(self, dataset):
        """The content digest must survive every way a dataset travels:
        pickling to a worker, the shared-memory packed form, and a
        ``.gfd`` file round trip.  Adjacency-*set* iteration order is
        not stable across pickling, so a digest of the packed bytes
        would give one dataset a different index-store address in every
        re-serializing process — the regression this test pins."""
        reference = dataset_fingerprint(dataset)
        assert dataset_fingerprint(pickle.loads(pickle.dumps(dataset))) == reference
        assert dataset_fingerprint(unpack_dataset(pack_dataset(dataset))) == reference

    def test_arena_handle_fingerprint_is_the_dataset_fingerprint(self, dataset):
        arena = DatasetArena.create(dataset)
        try:
            assert arena.handle.fingerprint == dataset_fingerprint(dataset)
        finally:
            arena.close()

    def test_empty_dataset_and_empty_graph(self):
        empty = GraphDataset(name="empty")
        assert len(unpack_dataset(pack_dataset(empty))) == 0
        quirky = GraphDataset([Graph([]), Graph(["A"])], name="quirky")
        back = unpack_dataset(pack_dataset(quirky))
        assert [g.order for g in back] == [0, 1]

    def test_non_string_labels_survive(self):
        mixed = GraphDataset(
            [Graph([1, ("t", 2), "a"], [(0, 1), (1, 2)])], name="mixed"
        )
        (graph,) = unpack_dataset(pack_dataset(mixed))
        assert graph.labels == (1, ("t", 2), "a")

    def test_reader_exposes_totals_zero_copy(self, dataset):
        payload = pack_dataset(dataset)
        with PackedDatasetReader(payload) as reader:
            assert reader.num_graphs == len(dataset)
            assert reader.total_vertices == dataset.total_vertices()
            assert reader.total_edges == dataset.total_edges()
            assert reader.dataset_name == dataset.name
            assert reader.graph(0) == dataset[0]
            with pytest.raises(IndexError):
                reader.graph(len(dataset))

    def test_reader_rejects_garbage(self):
        with pytest.raises(ValueError, match="magic"):
            PackedDatasetReader(b"\x00" * 64)

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_random_datasets_survive_shm_roundtrip(self, data):
        """pack → SharedMemory → attach → unpack preserves graph equality."""
        graphs = []
        num_graphs = data.draw(st.integers(min_value=0, max_value=6))
        for _ in range(num_graphs):
            n = data.draw(st.integers(min_value=0, max_value=7))
            labels = [
                data.draw(st.sampled_from(["A", "B", 3, ("x", 1)]))
                for _ in range(n)
            ]
            possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
            edges = data.draw(st.lists(st.sampled_from(possible), unique=True))\
                if possible else []
            graphs.append(Graph(labels, edges))
        dataset = GraphDataset(graphs, name="hyp")
        arena = DatasetArena.create(dataset)
        try:
            back = attach_dataset(arena.handle)
        finally:
            arena.close()
        assert len(back) == len(dataset) and back.name == "hyp"
        for original, rebuilt in zip(dataset, back):
            assert original == rebuilt


# ----------------------------------------------------------------------
# arena lifecycle
# ----------------------------------------------------------------------


def _segment_exists(name: str) -> bool:
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    segment.close()
    return True


class TestArenaLifecycle:
    def test_create_attach_close(self, dataset):
        arena = DatasetArena.create(dataset)
        handle = arena.handle
        assert handle.num_graphs == len(dataset)
        assert handle.total_vertices == dataset.total_vertices()
        assert handle.total_edges == dataset.total_edges()
        assert handle.fingerprint == dataset_fingerprint(dataset)
        assert handle.shm_name in live_arenas()
        attached = attach_dataset(handle)
        assert list(attached) == list(dataset)
        arena.close()
        assert handle.shm_name not in live_arenas()
        assert not _segment_exists(handle.shm_name)
        arena.close()  # idempotent

    def test_attach_after_close_raises(self, dataset):
        arena = DatasetArena.create(dataset)
        arena.close()
        with pytest.raises(FileNotFoundError):
            attach_dataset(arena.handle)

    def test_cached_dataset_attaches_once(self, dataset):
        clear_worker_caches()
        arena = DatasetArena.create(dataset)
        try:
            first = cached_dataset(arena.handle)
            second = cached_dataset(arena.handle)
            assert first is second
        finally:
            arena.close()
            clear_worker_caches()
        # Cache survives the unlink: the materialized copy is local.
        assert list(first) == list(dataset)

    def test_context_manager_closes(self, dataset):
        with DatasetArena.create(dataset) as arena:
            name = arena.handle.shm_name
            assert _segment_exists(name)
        assert not _segment_exists(name)


# ----------------------------------------------------------------------
# leak tests: dispatch always unlinks, even on worker crashes
# ----------------------------------------------------------------------


@pytest.fixture()
def recorded_arenas(monkeypatch):
    """Record every arena a dispatch creates, without changing behavior."""
    created: list[ArenaHandle] = []
    original = DatasetArena.create.__func__

    def recording_create(cls, dataset):
        arena = original(cls, dataset)
        created.append(arena.handle)
        return arena

    monkeypatch.setattr(
        DatasetArena, "create", classmethod(recording_create)
    )
    return created


def _tiny_profile(methods=None):
    return replace(
        CI_PROFILE,
        nodes_values=(8, 12),
        default_num_graphs=10,
        default_nodes=10,
        default_density=0.2,
        default_labels=3,
        query_sizes=(3, 5),
        queries_per_size=3,
        method_configs=dict(
            methods
            if methods is not None
            # All four equivalence methods, naive included (empty config).
            else {k: (v or {}) for k, v in METHOD_CONFIGS.items()}
        ),
    )


class TestLeaks:
    def test_segments_unlinked_after_sweep(self, recorded_arenas):
        nodes_sweep(_tiny_profile(), seed=3, jobs=2, shared_mem=True)
        assert len(recorded_arenas) == 2  # one arena per x value
        for handle in recorded_arenas:
            assert not _segment_exists(handle.shm_name), handle
        assert live_arenas() == ()

    def test_segments_evicted_as_cells_complete(self):
        """ROADMAP arena eviction: a dataset's segment is released once
        the last cell referencing it completes, not at dispatch end.

        With jobs=1 the engine path executes in submission order, so by
        the first completion of the second x value the first x value's
        arena must already be gone — the live count can never reach the
        number of x values again after the first arena retires."""
        observed: list[int] = []
        nodes_sweep(
            _tiny_profile(),
            seed=3,
            jobs=1,
            shared_mem=True,
            progress=lambda _msg: observed.append(len(live_arenas())),
        )
        # 4 methods x 2 x-values: both arenas exist up front, the first
        # retires after its 4th cell, the second after its last.
        assert observed[0] == 2
        assert observed[3:] == [1, 1, 1, 1, 0]

    def test_segments_evicted_in_batched_mode(self):
        observed: list[int] = []
        nodes_sweep(
            _tiny_profile(),
            seed=3,
            jobs=1,
            shared_mem=True,
            batch_queries=True,
            progress=lambda _msg: observed.append(len(live_arenas())),
        )
        assert observed[0] == 2
        assert observed[-1] == 0
        retired = observed.index(1)  # first arena released mid-dispatch...
        assert all(count <= 1 for count in observed[retired:])  # ...for good

    def test_segments_unlinked_after_pool_shutdown(self, dataset, workloads):
        arena = DatasetArena.create(dataset)
        task = share_task(
            CellTask(
                key=("d0", "naive"),
                method="naive",
                dataset=dataset,
                workloads=workloads,
            ),
            arena.handle,
        )
        with ParallelRunner(jobs=2) as runner:
            (outcome,) = runner.run([task])
        assert outcome.cell.build_status == STATUS_OK
        arena.close()
        assert not _segment_exists(arena.handle.shm_name)

    def test_segments_unlinked_on_worker_programming_error(
        self, recorded_arenas
    ):
        with pytest.raises(ValueError, match="unknown method"):
            nodes_sweep(
                _tiny_profile({"no_such_method": {}}),
                seed=3,
                jobs=2,
                shared_mem=True,
            )
        assert recorded_arenas, "sweep should have created arenas"
        for handle in recorded_arenas:
            assert not _segment_exists(handle.shm_name), handle

    def test_segments_unlinked_on_worker_crash(
        self, recorded_arenas, monkeypatch
    ):
        """A worker dying outright must not leak shared memory."""
        from concurrent.futures.process import BrokenProcessPool

        monkeypatch.setitem(ALL_INDEX_CLASSES, "killer", KillerIndex)
        with pytest.raises(BrokenProcessPool):
            nodes_sweep(
                _tiny_profile({"killer": {}}),
                seed=3,
                jobs=2,
                shared_mem=True,
            )
        assert recorded_arenas, "sweep should have created arenas"
        for handle in recorded_arenas:
            assert not _segment_exists(handle.shm_name), handle


# ----------------------------------------------------------------------
# execution-mode equivalence
# ----------------------------------------------------------------------


class TestModeEquivalence:
    def test_shared_cell_matches_plain_cell(self, dataset, workloads):
        for method, config in METHOD_CONFIGS.items():
            task = CellTask(
                key=("d0", method),
                method=method,
                dataset=dataset,
                workloads=workloads,
                method_config=config,
            )
            plain = run_cell(task)
            with DatasetArena.create(dataset) as arena:
                shared = run_shared_cell(share_task(task, arena.handle))
            assert canonical_cell(shared) == canonical_cell(plain), method

    def test_shared_tasks_through_pool_match_sequential(
        self, dataset, workloads
    ):
        tasks = [
            CellTask(
                key=("d0", method),
                method=method,
                dataset=dataset,
                workloads=workloads,
                method_config=config,
            )
            for method, config in METHOD_CONFIGS.items()
        ]
        sequential = run_cells(tasks, jobs=1)
        with DatasetArena.create(dataset) as arena:
            shared = run_cells(
                [share_task(task, arena.handle) for task in tasks], jobs=2
            )
        assert list(shared) == list(sequential)
        for key in sequential:
            assert canonical_cell(shared[key]) == canonical_cell(
                sequential[key]
            ), key

    def test_sweep_byte_identical_across_all_modes(self):
        """Sequential vs shared-mem vs batched (and combinations): the
        canonical JSON must agree byte-for-byte for all four methods."""
        profile = _tiny_profile()
        reference = nodes_sweep(profile, seed=3, jobs=1)
        reference_json = canonical_json(reference)
        modes = [
            dict(jobs=2, shared_mem=True),
            dict(jobs=2, batch_queries=True),
            dict(jobs=2, shared_mem=True, batch_queries=True),
            dict(jobs=1, shared_mem=True, batch_queries=True),
        ]
        for mode in modes:
            result = nodes_sweep(profile, seed=3, **mode)
            assert canonical_json(result) == reference_json, mode
            assert list(result.cells) == list(reference.cells), mode
            assert sweep_digest(result) == sweep_digest(reference), mode
