"""Shared test helpers: random graph builders and networkx bridges.

The suite cross-checks our from-scratch algorithms against networkx
(isomorphism, cycle enumeration) and brute force; these helpers keep
that plumbing in one place.  networkx is a *test-only* dependency — the
library itself never imports it.

This module lives beside the tests (not inside ``conftest.py``) so that
both ``tests/`` and ``benchmarks/`` can import it under pytest's
importlib import mode, where conftest modules are not importable by
name.
"""

from __future__ import annotations

import itertools
import random

import networkx as nx

from repro.graphs.graph import Graph
from repro.indexes.naive import NaiveIndex

LABELS = "ABCD"


def random_graph(
    rng: random.Random,
    min_vertices: int = 2,
    max_vertices: int = 7,
    labels: str = LABELS,
    edge_probability: float | None = None,
    connected: bool = False,
) -> Graph:
    """A uniformly random labeled graph for randomized tests."""
    n = rng.randint(min_vertices, max_vertices)
    vertex_labels = [rng.choice(labels) for _ in range(n)]
    possible = list(itertools.combinations(range(n), 2))
    if edge_probability is None:
        edges = rng.sample(possible, rng.randint(0, len(possible)))
    else:
        edges = [e for e in possible if rng.random() < edge_probability]
    graph = Graph(vertex_labels, edges)
    if connected and not graph.is_connected():
        return _connect(graph, rng)
    return graph


def _connect(graph: Graph, rng: random.Random) -> Graph:
    """Join the components of *graph* with random bridge edges."""
    joined = graph.copy()
    components = joined.connected_components()
    for previous, current in zip(components, components[1:]):
        joined.add_edge(rng.choice(previous), rng.choice(current))
    return joined


def to_networkx(graph: Graph) -> nx.Graph:
    """Convert to a networkx graph with labels on the ``label`` key."""
    out = nx.Graph()
    for v in graph.vertices():
        out.add_node(v, label=graph.label(v))
    out.add_edges_from(graph.edges())
    return out


def nx_label_match(a: dict, b: dict) -> bool:
    return a["label"] == b["label"]


def nx_is_monomorphic(query: Graph, data: Graph) -> bool:
    """Ground truth for Definition 3 via networkx."""
    matcher = nx.algorithms.isomorphism.GraphMatcher(
        to_networkx(data), to_networkx(query), node_match=nx_label_match
    )
    return matcher.subgraph_is_monomorphic()


# A small zoo of named graphs used across test files.


def triangle(labels: str = "AAA") -> Graph:
    return Graph(list(labels), [(0, 1), (1, 2), (0, 2)])


def path_graph(labels: str) -> Graph:
    return Graph(list(labels), [(i, i + 1) for i in range(len(labels) - 1)])


def star_graph(center: str, leaves: str) -> Graph:
    return Graph([center] + list(leaves), [(0, i + 1) for i in range(len(leaves))])


def cycle_graph(labels: str) -> Graph:
    n = len(labels)
    return Graph(list(labels), [(i, (i + 1) % n) for i in range(n)])


# Failure-injection indexes for the parallel-engine tests.  They live
# here (an importable, top-level module) so worker processes can
# unpickle references to them.


class ExplodingIndex(NaiveIndex):
    """An index whose build always crashes — exercises STATUS_ERROR."""

    name = "exploding"

    def _build(self, dataset, budget):
        raise RuntimeError("injected build failure")


class KillerIndex(NaiveIndex):
    """An index whose build kills its process outright.

    Unlike :class:`ExplodingIndex` (a catchable method failure that
    becomes a status), this simulates a hard worker crash — segfault,
    OOM-kill — that the pool surfaces as ``BrokenProcessPool``.  The
    arena leak tests use it to prove shared-memory segments are
    unlinked even when workers die mid-task.
    """

    name = "killer"

    def _build(self, dataset, budget):
        import os

        os._exit(3)
