"""The filter-and-verify contract, asserted for every index.

These are the defining correctness properties of the whole design
space (paper §2.2):

1. **No false negatives** — the candidate set contains every graph that
   truly contains the query.
2. **Verification exactness** — ``query()`` answers equal the naive
   oracle's answers.
3. Build/metric plumbing: timings, sizes, reports, budget handling.

Every test is parametrized over all six methods plus the naive
baseline, with CI-scale configurations.
"""

import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.parallel import ParallelRunner
from repro.core.runner import CellTask, make_method
from repro.generators.graphgen import GraphGenConfig, generate_dataset
from repro.generators.queries import generate_queries
from repro.graphs.graph import Graph
from repro.indexes import (
    CNIIndex,
    CTIndex,
    GCodeIndex,
    GIndex,
    GraphGrepSXIndex,
    GrapesIndex,
    NaiveIndex,
    TreeDeltaIndex,
)
from repro.utils.budget import Budget, BudgetExceeded

INDEX_FACTORIES = {
    "naive": lambda: NaiveIndex(),
    "ggsx": lambda: GraphGrepSXIndex(max_path_edges=3),
    "grapes": lambda: GrapesIndex(max_path_edges=3, workers=2),
    "ctindex": lambda: CTIndex(fingerprint_bits=512, feature_edges=3),
    "gcode": lambda: GCodeIndex(),
    "gindex": lambda: GIndex(max_fragment_edges=4, support_ratio=0.2),
    "tree+delta": lambda: TreeDeltaIndex(max_feature_edges=4, support_ratio=0.2),
    "cni": lambda: CNIIndex(mask_bits=64, radius=1),
}


@pytest.fixture(scope="module")
def dataset():
    config = GraphGenConfig(
        num_graphs=30, mean_nodes=12, mean_density=0.2, num_labels=4, nodes_stddev=3
    )
    return generate_dataset(config, seed=11)


@pytest.fixture(scope="module")
def queries(dataset):
    out = []
    for size in (2, 4, 6):
        out.extend(generate_queries(dataset, 4, size, seed=size))
    return out


@pytest.fixture(scope="module")
def truth(dataset, queries):
    oracle = NaiveIndex()
    oracle.build(dataset)
    return [oracle.query(q).answers for q in queries]


@pytest.fixture(scope="module")
def built_indexes(dataset):
    built = {}
    for name, factory in INDEX_FACTORIES.items():
        index = factory()
        index.build(dataset)
        built[name] = index
    return built


@pytest.mark.parametrize("name", list(INDEX_FACTORIES))
class TestContract:
    def test_no_false_negatives(self, name, built_indexes, queries, truth):
        index = built_indexes[name]
        for query, answers in zip(queries, truth):
            candidates = index.filter(query)
            assert answers <= candidates, f"{name} dropped true answers"

    def test_query_answers_match_oracle(self, name, built_indexes, queries, truth):
        index = built_indexes[name]
        for query, answers in zip(queries, truth):
            assert index.query(query).answers == answers

    def test_answers_subset_of_candidates(self, name, built_indexes, queries):
        index = built_indexes[name]
        for query in queries:
            result = index.query(query)
            assert result.answers <= result.candidates

    def test_every_query_has_an_answer(self, name, built_indexes, queries):
        # Random-walk queries are subgraphs of some dataset graph.
        index = built_indexes[name]
        for query in queries:
            assert index.query(query).answers

    def test_build_report_metrics(self, name, built_indexes):
        report = built_indexes[name].build_report
        assert report.seconds >= 0.0
        assert report.size_bytes >= 0
        assert isinstance(report.details, dict)

    def test_index_size_positive_for_real_indexes(self, name, built_indexes):
        if name == "naive":
            pytest.skip("the baseline stores nothing")
        assert built_indexes[name].size_bytes() > 0

    def test_query_result_timings(self, name, built_indexes, queries):
        result = built_indexes[name].query(queries[0])
        assert result.filter_seconds >= 0.0
        assert result.verify_seconds >= 0.0
        assert result.total_seconds == pytest.approx(
            result.filter_seconds + result.verify_seconds
        )

    def test_fp_ratio_in_unit_interval(self, name, built_indexes, queries):
        for query in queries[:4]:
            ratio = built_indexes[name].query(query).false_positive_ratio
            assert 0.0 <= ratio <= 1.0

    def test_unbuilt_index_refuses_queries(self, name):
        index = INDEX_FACTORIES[name]()
        with pytest.raises(RuntimeError):
            index.filter(Graph(["A"]))
        with pytest.raises(RuntimeError):
            index.build_report

    def test_single_vertex_query(self, name, built_indexes, dataset):
        index = built_indexes[name]
        label = dataset[0].label(0)
        result = index.query(Graph([label]))
        expected = {g.graph_id for g in dataset if label in g.distinct_labels()}
        assert result.answers == expected

    def test_impossible_query_returns_empty(self, name, built_indexes):
        index = built_indexes[name]
        query = Graph(["NO_SUCH_LABEL", "NO_SUCH_LABEL"], [(0, 1)])
        assert index.query(query).answers == set()

    def test_expired_build_budget_raises(self, name, dataset):
        if name == "naive":
            pytest.skip("the baseline builds in O(1)")
        index = INDEX_FACTORIES[name]()
        budget = Budget(0.0)
        time.sleep(0.002)
        with pytest.raises(BudgetExceeded):
            index.build(dataset, budget=budget)

    def test_repr_reflects_build_state(self, name, dataset):
        """``repr`` reports completed builds, not merely an assigned
        dataset: a failed budgeted build leaves the index unusable and
        must still read as empty."""
        index = INDEX_FACTORIES[name]()
        assert "empty" in repr(index)
        if name != "naive":
            failed = INDEX_FACTORIES[name]()
            budget = Budget(0.0)
            time.sleep(0.002)
            with pytest.raises(BudgetExceeded):
                failed.build(dataset, budget=budget)
            assert "empty" in repr(failed)  # _dataset is set, build is not
        index.build(dataset)
        assert "built" in repr(index)

    def test_rebuild_overwrites_cleanly(self, name, dataset, queries, truth):
        index = INDEX_FACTORIES[name]()
        index.build(dataset)
        first = index.query(queries[0]).answers
        index.build(dataset)  # rebuild over the same data
        assert index.query(queries[0]).answers == first == truth[0]


class TestDisconnectedQueries:
    """Disconnected queries exercise the multi-component code paths."""

    @pytest.mark.parametrize("name", list(INDEX_FACTORIES))
    def test_disconnected_query_correct(self, name, built_indexes, dataset, truth):
        index = built_indexes[name]
        label_a = dataset[0].label(0)
        label_b = dataset[1].label(0)
        query = Graph([label_a, label_b])  # two isolated labeled vertices
        oracle = NaiveIndex()
        oracle.build(dataset)
        assert index.query(query).answers == oracle.query(query).answers


# ----------------------------------------------------------------------
# property-based: the contract holds through the parallel engine
# ----------------------------------------------------------------------

PARALLEL_METHOD_CONFIGS = {
    "ggsx": {"max_path_edges": 2},
    "grapes": {"max_path_edges": 2, "workers": 2},
    "ctindex": {"fingerprint_bits": 256, "feature_edges": 3},
    "gcode": {"path_depth": 2, "top_eigenvalues": 2, "counter_buckets": 16},
}


def _probe_candidates(task: CellTask) -> list[tuple[frozenset, frozenset]]:
    """Worker-side probe: per-query (candidates, answers) for one method.

    Module-level so worker processes (fork start method) can resolve the
    pickled reference.
    """
    index = make_method(task.method, task.method_config)
    index.build(task.dataset)
    out = []
    for queries in task.workloads.values():
        for query in queries:
            result = index.query(query)
            out.append((result.candidates, result.answers))
    return out


class TestParallelContractProperties:
    """No-false-negatives, randomized, across the process boundary.

    For random seeded datasets and workloads, every method's candidate
    set — computed inside a pool worker via the parallel engine's
    generic ``map`` — must contain every answer the in-process naive
    oracle finds (paper §2.2, property 1), and verification must agree
    with the oracle exactly (property 2).
    """

    @settings(
        max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(seed=st.integers(min_value=0, max_value=2**20))
    def test_candidates_superset_of_naive_answers_in_parallel(self, seed):
        config = GraphGenConfig(
            num_graphs=12, mean_nodes=9, mean_density=0.22, num_labels=3
        )
        dataset = generate_dataset(config, seed=seed)
        queries = generate_queries(dataset, 3, 3, seed=seed + 1)
        queries += generate_queries(dataset, 2, 4, seed=seed + 2)

        oracle = NaiveIndex()
        oracle.build(dataset)
        truth = [oracle.query(q).answers for q in queries]

        tasks = [
            CellTask(
                key=(method,),
                method=method,
                dataset=dataset,
                workloads={0: queries},
                method_config=config_
            )
            for method, config_ in PARALLEL_METHOD_CONFIGS.items()
        ]
        with ParallelRunner(jobs=2) as runner:
            probes = runner.map(_probe_candidates, tasks)

        for task, per_query in zip(tasks, probes):
            assert len(per_query) == len(queries)
            for answers, (candidates, method_answers) in zip(truth, per_query):
                assert answers <= candidates, (
                    f"{task.method} dropped true answers (seed={seed})"
                )
                assert method_answers == answers, (
                    f"{task.method} verification diverged (seed={seed})"
                )
