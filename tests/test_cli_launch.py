"""``repro launch`` end-to-end: the orchestration acceptance contract.

The load-bearing invariant throughout: cost-balanced assignment changes
*which* cells land in which shard, never a result byte.  Balanced and
stride launches, history-calibrated launches, and resumed launches must
all merge to canonical JSON byte-identical to the unsharded sweep; a
resumed complete launch must execute zero cells; and partial runs must
render with explicit ``pending`` markers instead of crashing.
"""

import json
from dataclasses import replace

import pytest

import repro.cli.commands as commands
from repro.cli import main
from repro.core.driver import HISTORY_SCHEMA, driver_path_for, load_driver_run
from repro.core.presets import CI_PROFILE
from repro.core.serialization import canonical_json, load_sweep, sweep_digest
from repro.core.sharding import load_manifest, manifest_path_for, save_manifest


@pytest.fixture()
def tiny_profile(monkeypatch):
    profile = replace(
        CI_PROFILE,
        graph_count_values=(6, 10),
        default_num_graphs=8,
        default_nodes=10,
        default_density=0.2,
        default_labels=3,
        query_sizes=(3,),
        queries_per_size=2,
        build_budget_seconds=20.0,
        query_budget_seconds=20.0,
        method_configs={
            "naive": {},
            "ggsx": {"max_path_edges": 2},
        },
    )
    monkeypatch.setattr(commands, "active_profile", lambda: profile)
    return profile


@pytest.fixture()
def unsharded(tiny_profile, tmp_path, capsys):
    path = tmp_path / "full.json"
    assert main(["sweep", "graphs", "--json", str(path)]) == 0
    capsys.readouterr()
    return path


def _launch(tmp_path, name, *extra):
    json_path = tmp_path / f"{name}.json"
    argv = [
        "launch", "graphs", "--shards", "2", "--executor", "inprocess",
        "--json", str(json_path), *extra,
    ]
    return main(argv), json_path


class TestLaunchDigestIdentity:
    def test_balanced_launch_merges_byte_identically(
        self, unsharded, tmp_path, capsys
    ):
        code, json_path = _launch(tmp_path, "balanced")
        out = capsys.readouterr().out
        assert code == 0
        assert "merged digest" in out
        full = load_sweep(unsharded)
        launched = load_sweep(json_path)
        assert canonical_json(launched) == canonical_json(full)
        assert sweep_digest(launched) == sweep_digest(full)
        # The launch leaves its whole paper trail behind.
        assert driver_path_for(json_path).exists()
        assert manifest_path_for(json_path).exists()
        assert (tmp_path / "balanced.shard1of2.json").exists()
        assert (tmp_path / "balanced.shard1of2.log").exists()

    def test_stride_launch_matches_the_same_digest(
        self, unsharded, tmp_path, capsys
    ):
        code, json_path = _launch(tmp_path, "stride", "--assign", "stride")
        assert code == 0
        assert canonical_json(load_sweep(json_path)) == canonical_json(
            load_sweep(unsharded)
        )

    def test_more_shards_than_cells_skips_empties(
        self, unsharded, tmp_path, capsys
    ):
        json_path = tmp_path / "many.json"
        assert main(
            ["launch", "graphs", "--shards", "7", "--executor", "inprocess",
             "--json", str(json_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "across 4 shard(s)" in out  # 4 cells -> 4 live shards
        assert canonical_json(load_sweep(json_path)) == canonical_json(
            load_sweep(unsharded)
        )

    def test_single_shard_launch(self, unsharded, tmp_path, capsys):
        json_path = tmp_path / "one.json"
        assert main(
            ["launch", "graphs", "--shards", "1", "--executor", "inprocess",
             "--json", str(json_path)]
        ) == 0
        assert canonical_json(load_sweep(json_path)) == canonical_json(
            load_sweep(unsharded)
        )


class TestLaunchResume:
    def _counting(self, monkeypatch):
        executed = []
        import repro.core.experiments as experiments
        import repro.core.runner as runner_module

        real_run_cell = runner_module.run_cell

        def counting_run_cell(task):
            executed.append(task.key)
            return real_run_cell(task)

        monkeypatch.setattr(experiments, "run_cell", counting_run_cell)
        return executed

    def test_resume_of_a_complete_launch_runs_nothing(
        self, tiny_profile, tmp_path, capsys, monkeypatch
    ):
        code, json_path = _launch(tmp_path, "out")
        assert code == 0
        digest = sweep_digest(load_sweep(json_path))
        executed = self._counting(monkeypatch)
        capsys.readouterr()
        assert main(
            ["launch", "graphs", "--shards", "2", "--executor", "inprocess",
             "--json", str(json_path), "--resume"]
        ) == 0
        out = capsys.readouterr().out
        assert executed == []
        assert "driver: 0 cell(s) executed" in out
        assert "2 shard(s) skipped" in out
        assert sweep_digest(load_sweep(json_path)) == digest

    def test_resume_relaunches_only_the_crashed_shard(
        self, tiny_profile, tmp_path, capsys, monkeypatch
    ):
        code, json_path = _launch(tmp_path, "out")
        assert code == 0
        digest = sweep_digest(load_sweep(json_path))
        run = load_driver_run(driver_path_for(json_path))
        lost = set(run.assignment[1])  # shard 2's cells
        # Simulate a crash: shard 2 never wrote its manifest.
        shard2 = tmp_path / "out.shard2of2.json"
        shard2.unlink()
        manifest_path_for(shard2).unlink()
        executed = self._counting(monkeypatch)
        capsys.readouterr()
        assert main(
            ["launch", "graphs", "--shards", "2", "--executor", "inprocess",
             "--json", str(json_path), "--resume"]
        ) == 0
        out = capsys.readouterr().out
        assert set(executed) == lost
        assert f"{len(lost)} cell(s) executed" in out
        assert sweep_digest(load_sweep(json_path)) == digest

    def test_resume_verifies_the_recorded_digest(self, tiny_profile, tmp_path):
        code, json_path = _launch(tmp_path, "out")
        assert code == 0
        # Later launches must reassemble the digest recorded earlier.
        run = load_driver_run(driver_path_for(json_path))
        assert run.merged_digest == sweep_digest(load_sweep(json_path))

    def test_digest_mismatch_leaves_the_merged_output_untouched(
        self, tiny_profile, tmp_path, capsys
    ):
        """A failed determinism check must not replace the previously
        verified merged output with the bytes it just distrusted."""
        code, json_path = _launch(tmp_path, "out")
        assert code == 0
        original = json_path.read_text(encoding="utf-8")
        run_path = driver_path_for(json_path)
        document = json.loads(run_path.read_text(encoding="utf-8"))
        document["merged_digest"] = "0" * 16
        run_path.write_text(json.dumps(document), encoding="utf-8")
        capsys.readouterr()
        assert main(
            ["launch", "graphs", "--shards", "2", "--executor", "inprocess",
             "--json", str(json_path), "--resume"]
        ) == 2
        err = capsys.readouterr().err
        assert "does not match the digest" in err
        assert json_path.read_text(encoding="utf-8") == original

    def test_resume_refuses_a_different_launch(
        self, tiny_profile, tmp_path, capsys
    ):
        code, json_path = _launch(tmp_path, "out")
        assert code == 0
        capsys.readouterr()
        assert main(
            ["launch", "graphs", "--shards", "2", "--executor", "inprocess",
             "--json", str(json_path), "--resume", "--seed", "9"]
        ) == 2
        assert "does not match this launch" in capsys.readouterr().err

    def test_failed_shard_surfaces_its_log(
        self, tiny_profile, tmp_path, capsys
    ):
        code, json_path = _launch(tmp_path, "out")
        assert code == 0
        # Corrupt shard 1's manifest: the relaunched sweep's --resume
        # loader must fail loudly, and the driver must surface it.
        shard1_manifest = manifest_path_for(tmp_path / "out.shard1of2.json")
        shard1_manifest.write_text("{broken", encoding="utf-8")
        capsys.readouterr()
        assert main(
            ["launch", "graphs", "--shards", "2", "--executor", "inprocess",
             "--json", str(json_path), "--resume"]
        ) == 2
        captured = capsys.readouterr()
        assert "shard 1/2 failed" in captured.out
        assert "rerun with --resume" in captured.err


class TestHistoryCalibratedLaunch:
    def _write_history(self, path, cells):
        lines = [
            json.dumps(
                {
                    "schema": HISTORY_SCHEMA,
                    "experiment": "graphs",
                    "profile": "ci",
                    "seed": 0,
                    "x": x,
                    "method": method,
                    "seconds": seconds,
                    "units": 1000.0,
                }
            )
            for (x, method), seconds in cells.items()
        ]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    def test_launch_populates_the_history_file(
        self, tiny_profile, tmp_path, capsys
    ):
        history = tmp_path / "runs.jsonl"
        code, _ = _launch(tmp_path, "first", "--history", str(history))
        assert code == 0
        assert "appended 4 cell timing(s)" in capsys.readouterr().out
        records = [
            json.loads(line)
            for line in history.read_text(encoding="utf-8").splitlines()
        ]
        assert len(records) == 4
        assert {(r["x"], r["method"]) for r in records} == {
            (6, "naive"), (6, "ggsx"), (10, "naive"), (10, "ggsx"),
        }
        assert all(r["schema"] == HISTORY_SCHEMA for r in records)

    def test_history_changes_assignment_but_not_the_digest(
        self, unsharded, tmp_path, capsys
    ):
        """The acceptance criterion, end to end: a populated history
        file measurably changes the next launch's shard assignment
        (checked via CostHistory rates) without changing the merged
        digest."""
        from repro.core.driver import load_history

        code, blind_json = _launch(tmp_path, "blind")
        assert code == 0
        history_path = tmp_path / "runs.jsonl"
        skew = {
            (6, "naive"): 100.0,
            (6, "ggsx"): 1.0,
            (10, "naive"): 2.0,
            (10, "ggsx"): 3.0,
        }
        self._write_history(history_path, skew)
        history = load_history(history_path, "graphs", "ci")
        for key, seconds in skew.items():
            assert history.recorded(key).seconds == seconds
            assert history.rate_for(key, key[1]) == pytest.approx(
                seconds / 1000.0
            )
        capsys.readouterr()
        code, informed_json = _launch(
            tmp_path, "informed", "--history", str(history_path)
        )
        assert code == 0
        assert "calibrate the shard assignment" in capsys.readouterr().out
        blind = load_driver_run(driver_path_for(blind_json))
        informed = load_driver_run(driver_path_for(informed_json))
        assert blind.assignment != informed.assignment
        # LPT isolates the 100-second outlier on its own shard.
        assert [(6, "naive")] in informed.assignment
        # ... and not a byte of the result moved.
        assert canonical_json(load_sweep(informed_json)) == canonical_json(
            load_sweep(unsharded)
        )
        assert sweep_digest(load_sweep(informed_json)) == sweep_digest(
            load_sweep(blind_json)
        )

    def test_sweep_history_flag_loads_and_appends(
        self, tiny_profile, tmp_path, capsys
    ):
        history = tmp_path / "runs.jsonl"
        json_path = tmp_path / "sweep.json"
        assert main(
            ["sweep", "graphs", "--json", str(json_path), "--history",
             str(history)]
        ) == 0
        assert "appended 4 cell timing(s)" in capsys.readouterr().out
        # A resumed complete run executes nothing and re-appends nothing.
        assert main(
            ["sweep", "graphs", "--json", str(json_path), "--resume",
             "--history", str(history)]
        ) == 0
        assert "appended" not in capsys.readouterr().out
        assert len(history.read_text(encoding="utf-8").splitlines()) == 4


class TestCellsFlag:
    def test_cells_runs_exactly_the_assigned_cells(
        self, tiny_profile, tmp_path, capsys
    ):
        json_path = tmp_path / "cells.json"
        assert main(
            ["sweep", "graphs", "--cells", "6:ggsx,10:naive", "--json",
             str(json_path)]
        ) == 0
        sweep = load_sweep(json_path)
        # The manifest keeps the full grid; only the assigned cells ran.
        assert sweep.x_values == [6, 10]
        assert sweep.methods == ["naive", "ggsx"]
        assert set(sweep.cells) == {(6, "ggsx"), (10, "naive")}
        manifest = load_manifest(manifest_path_for(json_path))
        assert manifest.assignment == [(6, "ggsx"), (10, "naive")]

    def test_cells_resume_identity(self, tiny_profile, tmp_path, capsys):
        json_path = tmp_path / "cells.json"
        assert main(
            ["sweep", "graphs", "--cells", "6:ggsx", "--json", str(json_path)]
        ) == 0
        # Same assignment resumes to a no-op...
        assert main(
            ["sweep", "graphs", "--cells", "6:ggsx", "--json", str(json_path),
             "--resume"]
        ) == 0
        capsys.readouterr()
        # ... a different one is refused by name.
        assert main(
            ["sweep", "graphs", "--cells", "10:naive", "--json",
             str(json_path), "--resume"]
        ) == 2
        assert "cells" in capsys.readouterr().err

    def test_cells_requires_json(self, tiny_profile, capsys):
        assert main(["sweep", "graphs", "--cells", "6:ggsx"]) == 2
        assert "--cells requires --json" in capsys.readouterr().err

    def test_cells_and_shard_are_mutually_exclusive(
        self, tiny_profile, tmp_path, capsys
    ):
        assert main(
            ["sweep", "graphs", "--cells", "6:ggsx", "--shard", "1/2",
             "--json", str(tmp_path / "x.json")]
        ) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_unknown_cells_entry_is_a_cli_error(
        self, tiny_profile, tmp_path, capsys
    ):
        assert main(
            ["sweep", "graphs", "--cells", "99:ggsx", "--json",
             str(tmp_path / "x.json")]
        ) == 2
        assert "matches no x value" in capsys.readouterr().err


class TestPendingReport:
    @pytest.fixture()
    def half_run(self, tiny_profile, tmp_path, capsys):
        """A 1/2-stride shard of the 4-cell grid, merged --allow-partial."""
        shard_json = tmp_path / "half.json"
        assert main(
            ["sweep", "graphs", "--shard", "1/2", "--json", str(shard_json)]
        ) == 0
        merged = tmp_path / "partial.json"
        assert main(
            ["merge", str(manifest_path_for(shard_json)), "--json",
             str(merged), "--allow-partial"]
        ) == 0
        capsys.readouterr()
        return shard_json, merged

    def test_partial_merge_renders_pending_cells(self, half_run, capsys):
        _, merged = half_run
        assert main(["report", str(merged), "--figure", "6"]) == 0
        out = capsys.readouterr().out
        assert "2 of 4 cell(s) pending" in out
        assert "pending" in out
        assert "Figure 6(c)" in out

    def test_shard_manifest_renders_directly(self, half_run, capsys):
        shard_json, _ = half_run
        assert main(["report", str(manifest_path_for(shard_json))]) == 0
        out = capsys.readouterr().out
        assert "2 of 4 cell(s) pending" in out

    def test_complete_run_reports_nothing_pending(
        self, unsharded, capsys
    ):
        assert main(["report", str(unsharded), "--figure", "6"]) == 0
        out = capsys.readouterr().out
        assert "pending" not in out

    def test_sweep_json_without_manifest_still_renders(
        self, unsharded, capsys
    ):
        manifest_path_for(unsharded).unlink()
        assert main(["report", str(unsharded), "--figure", "6"]) == 0
        assert "Figure 6(a)" in capsys.readouterr().out

    def test_corrupt_manifest_beside_results_is_ignored(
        self, unsharded, capsys
    ):
        manifest_path_for(unsharded).write_text("{broken", encoding="utf-8")
        assert main(["report", str(unsharded), "--figure", "6"]) == 0
        assert "Figure 6(a)" in capsys.readouterr().out

    def test_pending_is_distinct_from_missing_data(
        self, tiny_profile, tmp_path, capsys, monkeypatch
    ):
        """A cell that *ran* and produced nothing stays '—'; only
        never-run cells read 'pending'."""
        shard_json = tmp_path / "half.json"
        assert main(
            ["sweep", "graphs", "--shard", "1/2", "--json", str(shard_json)]
        ) == 0
        manifest = load_manifest(manifest_path_for(shard_json))
        # Fake a budget-failed build on a completed cell: status only,
        # so the digest must be recomputed for the tamper to be honest.
        from dataclasses import replace as dc_replace

        from repro.core.runner import MethodCell
        from repro.core.sharding import cell_digest

        entry = manifest.cells[0]
        failed = MethodCell(method=entry.method, build_status="timeout")
        manifest.cells[0] = dc_replace(
            entry, cell=failed, digest=cell_digest(failed)
        )
        save_manifest(manifest, manifest_path_for(shard_json))
        capsys.readouterr()
        assert main(["report", str(manifest_path_for(shard_json))]) == 0
        out = capsys.readouterr().out
        assert "pending" in out
        assert "—" in out


class TestLaunchErrors:
    def test_fleet_executor_stubs_fail_loudly(
        self, tiny_profile, tmp_path, capsys
    ):
        for name in ("ssh", "k8s"):
            assert main(
                ["launch", "graphs", "--executor", name, "--json",
                 str(tmp_path / "x.json")]
            ) == 2
            assert "documented stub" in capsys.readouterr().err

    def test_bad_shards_and_jobs(self, tiny_profile, tmp_path, capsys):
        assert main(
            ["launch", "graphs", "--shards", "0", "--json",
             str(tmp_path / "x.json")]
        ) == 2
        assert "--shards" in capsys.readouterr().err
        assert main(
            ["launch", "graphs", "--jobs", "-1", "--json",
             str(tmp_path / "x.json")]
        ) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_unknown_method_and_selector(self, tiny_profile, tmp_path, capsys):
        assert main(
            ["launch", "graphs", "--method", "vf9", "--json",
             str(tmp_path / "x.json")]
        ) == 2
        assert "unknown method" in capsys.readouterr().err
        assert main(
            ["launch", "graphs", "--only", "metod=ggsx", "--json",
             str(tmp_path / "x.json")]
        ) == 2
        assert "unknown selector key" in capsys.readouterr().err


@pytest.mark.slow
class TestLocalSubprocessExecutor:
    def test_real_subprocess_shards_merge_byte_identically(self, tmp_path):
        """The default executor, unmonkeypatched: concurrent
        ``python -m repro`` children at CI scale, narrowed to one cheap
        cell per method."""
        json_path = tmp_path / "local.json"
        code = main(
            ["launch", "graphs", "--only", "graphs=40", "--method", "naive",
             "--method", "ggsx", "--shards", "2", "--json", str(json_path)]
        )
        assert code == 0
        seq_path = tmp_path / "seq.json"
        assert main(
            ["sweep", "graphs", "--only", "graphs=40", "--method", "naive",
             "--method", "ggsx", "--json", str(seq_path)]
        ) == 0
        assert canonical_json(load_sweep(json_path)) == canonical_json(
            load_sweep(seq_path)
        )
