"""Memory-budget failure injection (the paper's §5.2.4 Grapes story).

Grapes failed the largest graph-count experiments not by time but by
RAM ("excessive memory usage ... leading to thrashing even in our
128GB RAM host").  These tests drive byte allowances through the index
builds and assert (a) overruns raise cleanly, (b) the runner records
them as a distinct status, and (c) the *ordering* of memory breaking
points matches the paper: Grapes (locations) outgrows an allowance
that GGSX (counts only) fits in.
"""

import pytest

from repro.core.runner import STATUS_MEMORY, STATUS_OK, evaluate_method
from repro.generators.graphgen import GraphGenConfig, generate_dataset
from repro.generators.queries import generate_queries
from repro.indexes import CTIndex, GCodeIndex, GIndex, GraphGrepSXIndex, GrapesIndex
from repro.utils.budget import Budget, BudgetExceeded, MemoryBudgetExceeded


@pytest.fixture(scope="module")
def dataset():
    config = GraphGenConfig(
        num_graphs=30, mean_nodes=16, mean_density=0.15, num_labels=4
    )
    return generate_dataset(config, seed=17)


class TestBudgetClass:
    def test_memory_check_unlimited(self):
        Budget(seconds=None).check_memory(10**12)  # no allowance: no-op

    def test_memory_check_raises(self):
        budget = Budget(max_bytes=1000)
        with pytest.raises(MemoryBudgetExceeded):
            budget.check_memory(1001)

    def test_memory_within_allowance(self):
        Budget(max_bytes=1000).check_memory(1000)

    def test_memory_exceeded_is_budget_exceeded(self):
        # Callers catching BudgetExceeded also catch memory overruns.
        assert issubclass(MemoryBudgetExceeded, BudgetExceeded)

    def test_negative_allowance_rejected(self):
        with pytest.raises(ValueError):
            Budget(max_bytes=-1)

    def test_restarted_carries_memory_allowance(self):
        budget = Budget(seconds=10.0, max_bytes=512)
        assert budget.restarted().max_bytes == 512

    def test_message_mentions_bytes(self):
        budget = Budget(max_bytes=10, phase="grapes build")
        with pytest.raises(MemoryBudgetExceeded, match="grapes build"):
            budget.check_memory(11)


@pytest.mark.parametrize(
    "factory",
    [
        lambda: GraphGrepSXIndex(max_path_edges=3),
        lambda: GrapesIndex(max_path_edges=3, workers=2),
        lambda: CTIndex(fingerprint_bits=4096, feature_edges=3),
        lambda: GCodeIndex(),
        lambda: GIndex(max_fragment_edges=4, support_ratio=0.1),
    ],
    ids=["ggsx", "grapes", "ctindex", "gcode", "gindex"],
)
def test_tiny_memory_allowance_aborts_build(factory, dataset):
    index = factory()
    with pytest.raises(MemoryBudgetExceeded):
        index.build(dataset, budget=Budget(max_bytes=64))


def test_generous_memory_allowance_is_transparent(dataset):
    index = GrapesIndex(max_path_edges=3, workers=2)
    index.build(dataset, budget=Budget(max_bytes=10**10))
    reference = GrapesIndex(max_path_edges=3, workers=2)
    reference.build(dataset)
    for query in generate_queries(dataset, 3, 4, seed=1):
        assert index.query(query).answers == reference.query(query).answers


def test_runner_records_memory_status(dataset):
    workloads = {4: generate_queries(dataset, 2, 4, seed=0)}
    cell = evaluate_method(
        "grapes",
        dataset,
        workloads,
        method_config={"max_path_edges": 3, "workers": 2},
        build_budget_seconds=30.0,
        build_memory_bytes=64,
    )
    assert cell.build_status == STATUS_MEMORY
    assert cell.build_seconds is None
    assert cell.query_seconds() is None


def test_grapes_outgrows_allowance_that_fits_ggsx(dataset):
    """§5.2.4's mechanism: the location information makes Grapes the
    first to hit a shared memory ceiling."""
    ggsx = GraphGrepSXIndex(max_path_edges=3)
    ggsx.build(dataset)
    # An allowance comfortably above GGSX's estimate but below Grapes'.
    allowance = int(ggsx._trie.estimated_bytes() * 1.5)

    fits = GraphGrepSXIndex(max_path_edges=3)
    fits.build(dataset, budget=Budget(max_bytes=allowance))  # must fit

    grapes = GrapesIndex(max_path_edges=3, workers=1)
    with pytest.raises(MemoryBudgetExceeded):
        grapes.build(dataset, budget=Budget(max_bytes=allowance))


def test_estimate_tracks_deep_sizeof(dataset):
    """The cheap estimate must stay within an order of magnitude of the
    exact deep size — close enough for breaking-point experiments."""
    from repro.utils.sizeof import deep_sizeof

    for factory in (
        lambda: GraphGrepSXIndex(max_path_edges=3),
        lambda: GrapesIndex(max_path_edges=3, workers=1),
    ):
        index = factory()
        index.build(dataset)
        estimate = index._trie.estimated_bytes()
        exact = deep_sizeof(index._trie)
        assert exact / 10 <= estimate <= exact * 10
