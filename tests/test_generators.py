"""Tests for GraphGen, the real-dataset stand-ins and query workloads.

The calibration tests assert the generators reproduce the *published*
statistics — Table 1 for the stand-ins, and §4.2's structural
observations for GraphGen (connectivity; cycle prevalence at the sane
defaults; tree-shaped graphs at 50 nodes).
"""

import random
import statistics

import pytest

from repro.generators.graphgen import GraphGenConfig, generate_dataset, generate_graph
from repro.generators.queries import generate_queries, random_walk_query
from repro.generators.realsets import REAL_DATASET_SPECS, make_real_dataset
from repro.graphs.dataset import GraphDataset
from repro.graphs.graph import Graph
from repro.graphs.statistics import dataset_statistics
from repro.isomorphism.vf2 import is_subgraph


class TestGraphGenConfig:
    def test_defaults_are_the_sane_defaults(self):
        config = GraphGenConfig()
        assert (config.num_graphs, config.mean_nodes) == (1000, 200)
        assert (config.mean_density, config.num_labels) == (0.025, 20)

    def test_validation(self):
        with pytest.raises(ValueError):
            GraphGenConfig(num_graphs=0)
        with pytest.raises(ValueError):
            GraphGenConfig(mean_nodes=1)
        with pytest.raises(ValueError):
            GraphGenConfig(mean_density=0.0)
        with pytest.raises(ValueError):
            GraphGenConfig(num_labels=0)

    def test_label_vocabulary(self):
        assert GraphGenConfig(num_labels=3).labels() == ["L0", "L1", "L2"]


class TestGraphGen:
    CONFIG = GraphGenConfig(
        num_graphs=60, mean_nodes=30, mean_density=0.1, num_labels=5
    )

    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_dataset(self.CONFIG, seed=123)

    def test_graph_count(self, dataset):
        assert len(dataset) == 60

    def test_all_graphs_connected(self, dataset):
        assert all(graph.is_connected() for graph in dataset)

    def test_mean_nodes_near_target(self, dataset):
        mean = statistics.mean(g.order for g in dataset)
        assert mean == pytest.approx(30, abs=3)

    def test_mean_density_near_target(self, dataset):
        mean = statistics.mean(g.density() for g in dataset)
        assert mean == pytest.approx(0.1, abs=0.03)

    def test_labels_within_vocabulary(self, dataset):
        vocabulary = set(self.CONFIG.labels())
        assert dataset.distinct_labels() <= vocabulary

    def test_reproducible(self):
        a = generate_dataset(self.CONFIG, seed=9)
        b = generate_dataset(self.CONFIG, seed=9)
        for left, right in zip(a, b):
            assert left == right

    def test_seeds_differ(self):
        a = generate_dataset(self.CONFIG, seed=1)
        b = generate_dataset(self.CONFIG, seed=2)
        assert any(left != right for left, right in zip(a, b))

    def test_dense_graphs_have_cycles(self):
        """§4.2: at the sane defaults nearly all graphs contain cycles.

        The paper's default point (200 nodes, d=0.025) has ~2.5x more
        edges than a spanning tree; 40 nodes at d=0.12 matches that
        ratio at CI scale.
        """
        config = GraphGenConfig(
            num_graphs=50, mean_nodes=40, mean_density=0.12, num_labels=5
        )
        dataset = generate_dataset(config, seed=7)
        cyclic = sum(1 for g in dataset if g.size > g.order - 1)
        assert cyclic / len(dataset) > 0.9

    def test_sparse_small_graphs_often_trees(self):
        """§4.2: ~half the 50-node graphs at the lowest density are
        tree-shaped (our small-scale analog)."""
        config = GraphGenConfig(
            num_graphs=60, mean_nodes=12, mean_density=0.005, num_labels=5
        )
        dataset = generate_dataset(config, seed=8)
        trees = sum(1 for g in dataset if g.size == g.order - 1)
        assert trees / len(dataset) > 0.3

    def test_single_graph_generation(self):
        rng = random.Random(0)
        config = GraphGenConfig(num_graphs=1, mean_nodes=20, mean_density=0.1, num_labels=3)
        graph = generate_graph(config, config.labels(), rng)
        assert graph.is_connected()
        assert graph.order >= 2


class TestRealSets:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_real_dataset("NOPE")

    def test_case_insensitive(self):
        dataset = make_real_dataset("aids", scale=0.01, seed=0)
        assert "AIDS" in dataset.name

    def test_specs_match_table1_row_counts(self):
        assert REAL_DATASET_SPECS["AIDS"].num_graphs == 40000
        assert REAL_DATASET_SPECS["PDBS"].num_graphs == 600
        assert REAL_DATASET_SPECS["PCM"].num_graphs == 200
        assert REAL_DATASET_SPECS["PPI"].num_graphs == 20

    def test_aids_like_full_scale_statistics(self):
        """Per-graph stats at full scale on a 300-graph sample."""
        dataset = make_real_dataset("AIDS", num_graphs=300, seed=3)
        stats = dataset_statistics(dataset)
        spec = REAL_DATASET_SPECS["AIDS"]
        assert stats.avg_vertices == pytest.approx(spec.avg_nodes, rel=0.15)
        assert stats.avg_degree == pytest.approx(spec.avg_degree, rel=0.15)
        assert stats.avg_labels_per_graph == pytest.approx(
            spec.avg_labels_per_graph, rel=0.30
        )
        disconnected_fraction = stats.num_disconnected / stats.num_graphs
        assert disconnected_fraction == pytest.approx(
            spec.disconnected_fraction, abs=0.06
        )

    def test_pcm_like_degree_and_disconnection(self):
        dataset = make_real_dataset("PCM", num_graphs=40, seed=4)
        stats = dataset_statistics(dataset)
        spec = REAL_DATASET_SPECS["PCM"]
        assert stats.avg_degree == pytest.approx(spec.avg_degree, rel=0.2)
        assert stats.num_disconnected == stats.num_graphs  # all disconnected

    def test_scaling_shrinks_graphs(self):
        small = make_real_dataset("PCM", scale=0.05, seed=0)
        assert dataset_statistics(small).avg_vertices < 60

    def test_num_graphs_override(self):
        dataset = make_real_dataset("PPI", scale=0.01, num_graphs=7, seed=0)
        assert len(dataset) == 7

    def test_invalid_overrides_rejected(self):
        with pytest.raises(ValueError):
            make_real_dataset("AIDS", scale=0.0)
        with pytest.raises(ValueError):
            make_real_dataset("AIDS", num_graphs=0)

    def test_label_skew_present(self):
        """Chemical-style alphabets are skewed: the top label should
        cover far more than 1/num_labels of the vertices."""
        dataset = make_real_dataset("AIDS", num_graphs=100, seed=5)
        histogram: dict = {}
        for graph in dataset:
            for label, count in graph.label_histogram().items():
                histogram[label] = histogram.get(label, 0) + count
        total = sum(histogram.values())
        top = max(histogram.values())
        assert top / total > 3.0 / REAL_DATASET_SPECS["AIDS"].num_labels


class TestQueries:
    @pytest.fixture(scope="class")
    def dataset(self):
        config = GraphGenConfig(
            num_graphs=30, mean_nodes=20, mean_density=0.15, num_labels=4
        )
        return generate_dataset(config, seed=21)

    def test_requested_count_and_size(self, dataset):
        queries = generate_queries(dataset, 7, 6, seed=0)
        assert len(queries) == 7
        assert all(q.size == 6 for q in queries)

    def test_queries_are_connected(self, dataset):
        for query in generate_queries(dataset, 10, 8, seed=1):
            assert query.is_connected()

    def test_queries_have_answers(self, dataset):
        """§4.3: queries are subgraphs of dataset graphs."""
        for query in generate_queries(dataset, 8, 6, seed=2):
            assert any(is_subgraph(query, graph) for graph in dataset)

    def test_reproducible(self, dataset):
        a = generate_queries(dataset, 5, 4, seed=3)
        b = generate_queries(dataset, 5, 4, seed=3)
        assert all(x == y for x, y in zip(a, b))

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            generate_queries(GraphDataset(), 1, 4)

    def test_invalid_size_rejected(self, dataset):
        with pytest.raises(ValueError):
            generate_queries(dataset, 1, 0)

    def test_oversized_queries_rejected(self):
        tiny = GraphDataset([Graph("AB", [(0, 1)])])
        with pytest.raises(ValueError):
            generate_queries(tiny, 1, 50)

    def test_single_walk(self, dataset):
        rng = random.Random(0)
        query = random_walk_query(dataset, 5, rng)
        assert query.size == 5
