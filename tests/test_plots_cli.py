"""Tests for the ASCII plots and the command-line interface."""

import pytest

from repro.cli import main
from repro.core.plots import ascii_plot
from repro.graphs.io import read_dataset


class TestAsciiPlot:
    SERIES = {
        "ggsx": [(10, 0.01), (20, 0.1), (30, 1.0)],
        "gindex": [(10, 1.0), (20, 10.0), (30, None)],
    }

    def test_contains_title_and_legend(self):
        plot = ascii_plot("Indexing time", self.SERIES)
        assert "Indexing time" in plot
        assert "o=ggsx" in plot and "x=gindex" in plot

    def test_markers_present(self):
        plot = ascii_plot("t", self.SERIES)
        assert "o" in plot and "x" in plot

    def test_missing_points_skipped(self):
        plot = ascii_plot("t", {"a": [(1, None), (2, None)]})
        assert "(no data)" in plot

    def test_log_axis_labels(self):
        plot = ascii_plot("t", self.SERIES, log_y=True)
        assert "log-y" in plot
        assert "0.01" in plot  # bottom label
        assert "10" in plot  # top label

    def test_linear_axis(self):
        plot = ascii_plot("t", self.SERIES, log_y=False)
        assert "linear-y" in plot

    def test_dimensions_respected(self):
        plot = ascii_plot("t", self.SERIES, width=30, height=8)
        body_lines = [l for l in plot.splitlines() if "|" in l]
        assert len(body_lines) == 8
        assert all(len(l.split("|", 1)[1]) == 30 for l in body_lines)

    def test_single_point(self):
        plot = ascii_plot("t", {"a": [(5, 2.0)]})
        assert "#" not in plot  # only first marker used
        assert "o" in plot


@pytest.fixture()
def dataset_file(tmp_path):
    path = tmp_path / "data.gfd"
    code = main(
        [
            "generate",
            str(path),
            "--graphs", "12",
            "--nodes", "10",
            "--density", "0.25",
            "--labels", "3",
            "--seed", "4",
        ]
    )
    assert code == 0
    return path


class TestCli:
    def test_generate_writes_dataset(self, dataset_file):
        dataset = read_dataset(dataset_file)
        assert len(dataset) == 12

    def test_generate_real_stand_in(self, tmp_path):
        path = tmp_path / "aids.gfd"
        code = main(["generate", str(path), "--real", "AIDS", "--scale", "0.002"])
        assert code == 0
        assert len(read_dataset(path)) >= 5

    def test_stats_prints_table(self, dataset_file, capsys):
        assert main(["stats", str(dataset_file)]) == 0
        out = capsys.readouterr().out
        assert "#graphs" in out and "avg degree" in out

    def test_queries_roundtrip(self, dataset_file, tmp_path):
        query_file = tmp_path / "queries.gfd"
        code = main(
            ["queries", str(dataset_file), str(query_file), "--count", "3", "--edges", "4"]
        )
        assert code == 0
        workload = read_dataset(query_file)
        assert len(workload) == 3
        assert all(q.size == 4 for q in workload)

    def test_build_and_save(self, dataset_file, tmp_path, capsys):
        index_file = tmp_path / "ggsx.idx"
        code = main(
            [
                "build", str(dataset_file),
                "--method", "ggsx",
                "--option", "max_path_edges=3",
                "--save", str(index_file),
            ]
        )
        assert code == 0
        assert index_file.exists()
        assert "built ggsx" in capsys.readouterr().out

    def test_build_unknown_method_fails(self, dataset_file, capsys):
        assert main(["build", str(dataset_file), "--method", "btree"]) == 2
        assert "unknown method" in capsys.readouterr().err

    def test_build_budget_timeout(self, dataset_file, capsys):
        code = main(
            [
                "build", str(dataset_file),
                "--method", "gindex",
                "--budget", "0.000001",
            ]
        )
        assert code == 2
        assert "budget" in capsys.readouterr().err

    def test_query_compares_methods(self, dataset_file, tmp_path, capsys):
        query_file = tmp_path / "queries.gfd"
        main(["queries", str(dataset_file), str(query_file), "--count", "2", "--edges", "3"])
        code = main(
            [
                "query", str(dataset_file), str(query_file),
                "--method", "ggsx",
                "--method", "naive",
                "--option", "max_path_edges=2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ggsx" in out and "naive" in out
        assert "DISAGREES" not in out

    def test_query_with_loaded_index(self, dataset_file, tmp_path, capsys):
        index_file = tmp_path / "saved.idx"
        main(["build", str(dataset_file), "--method", "ctindex",
              "--option", "fingerprint_bits=256", "--option", "feature_edges=2",
              "--save", str(index_file)])
        query_file = tmp_path / "queries.gfd"
        main(["queries", str(dataset_file), str(query_file), "--count", "2", "--edges", "3"])
        code = main(
            [
                "query", str(dataset_file), str(query_file),
                "--load", str(index_file),
                "--method", "naive",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ctindex" in out and "DISAGREES" not in out

    def test_missing_dataset_fails_cleanly(self, capsys):
        assert main(["stats", "/no/such/file.gfd"]) == 2
        assert "not found" in capsys.readouterr().err

    def test_bad_option_syntax_fails(self, dataset_file, capsys):
        code = main(
            ["build", str(dataset_file), "--method", "ggsx", "--option", "oops"]
        )
        assert code == 2
        assert "KEY=VALUE" in capsys.readouterr().err


class TestCliJobs:
    """`repro build` / `repro query` batch across methods via --jobs."""

    def test_build_multiple_methods_sequential(self, dataset_file, capsys):
        code = main(
            ["build", str(dataset_file), "--method", "ggsx", "--method", "naive",
             "--option", "max_path_edges=2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "built ggsx" in out and "built naive" in out

    def test_build_multiple_methods_parallel(self, dataset_file, capsys):
        code = main(
            ["build", str(dataset_file), "--method", "ggsx", "--method", "naive",
             "--option", "max_path_edges=2", "--jobs", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "built ggsx" in out and "built naive" in out

    def test_build_save_requires_single_method(self, dataset_file, tmp_path, capsys):
        code = main(
            ["build", str(dataset_file), "--method", "ggsx", "--method", "naive",
             "--save", str(tmp_path / "x.idx")]
        )
        assert code == 2
        assert "single --method" in capsys.readouterr().err

    def test_build_all_timeout_parallel_fails(self, dataset_file, capsys):
        code = main(
            ["build", str(dataset_file), "--method", "gindex", "--method",
             "tree+delta", "--jobs", "2", "--budget", "0.000001"]
        )
        assert code == 2
        captured = capsys.readouterr()
        assert "TIMED OUT" in captured.out
        assert "budget" in captured.err

    def test_build_partial_timeout_still_fails(self, dataset_file, capsys):
        """One timed-out method fails the command even when others
        finish — same contract as the single-method path."""
        code = main(
            ["build", str(dataset_file), "--method", "gindex", "--method",
             "naive", "--jobs", "2", "--budget", "0.000001"]
        )
        assert code == 2
        captured = capsys.readouterr()
        assert "built naive" in captured.out
        assert "gindex" in captured.err and "budget" in captured.err

    def test_build_rejects_option_no_method_accepts(self, dataset_file, capsys):
        code = main(
            ["build", str(dataset_file), "--method", "ggsx", "--method",
             "naive", "--option", "mx_path_edges=2"]
        )
        assert code == 2
        assert "not accepted by any selected method" in capsys.readouterr().err

    def test_query_parallel_matches_sequential(self, dataset_file, tmp_path, capsys):
        query_file = tmp_path / "queries.gfd"
        main(["queries", str(dataset_file), str(query_file),
              "--count", "3", "--edges", "3"])
        capsys.readouterr()
        args = ["query", str(dataset_file), str(query_file),
                "--method", "ggsx", "--method", "naive", "--method", "ctindex",
                "--option", "max_path_edges=2", "--option", "fingerprint_bits=256"]
        assert main(args) == 0
        sequential = capsys.readouterr().out
        assert main(args + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out

        def measured(text):
            # Strip the timing column; everything else must agree.
            rows = []
            for line in text.splitlines()[1:]:
                name, _, rest = line.strip().partition(" avg ")
                rows.append((name.strip(), rest.split("candidates", 1)[-1]))
            return rows

        assert measured(parallel) == measured(sequential)
        assert "DISAGREES" not in parallel

    def test_query_rejects_negative_jobs(self, dataset_file, tmp_path, capsys):
        query_file = tmp_path / "queries.gfd"
        main(["queries", str(dataset_file), str(query_file),
              "--count", "2", "--edges", "3"])
        code = main(["query", str(dataset_file), str(query_file),
                     "--method", "naive", "--jobs", "-1"])
        assert code == 2
        assert "--jobs" in capsys.readouterr().err
