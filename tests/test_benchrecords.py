"""The BENCH_*.json trajectory gate: validation, sealing, tampering.

Every checked-in benchmark record must validate — and a hand-edited
one must *not*.  The suite covers all three record families (the
graph-core matcher micro-bench, the serve load records v1/v2, and the
sealed CSR hot-path record), the digest seal round trip, and the
``repro report`` wiring that rejects malformed records with exit 2.
"""

import json
from pathlib import Path

import pytest

from repro.core.benchrecords import (
    BenchValidationError,
    bench_seal,
    bench_validate,
    is_bench_record,
    record_digest,
    validate_bench_file,
)

REPO = Path(__file__).resolve().parent.parent


def _graph_core_record():
    return {
        "bench": "graph-core-matcher",
        "pr": 6,
        "graphs": 25,
        "queries": 8,
        "hits": 8,
        "dict_seconds": 0.016,
        "csr_seconds": 0.008,
        "speedup": 2.0,
    }


def _hot_path_record():
    return bench_seal(
        {
            "bench": "csr-query-hot-path",
            "pr": 9,
            "enum_graphs": 6,
            "features": 500,
            "verify_graphs": 6,
            "verify_queries": 8,
            "hits": 8,
            "enumeration_dict_seconds": 0.4,
            "enumeration_csr_seconds": 0.2,
            "enumeration_speedup": 2.0,
            "verify_set_seconds": 0.3,
            "verify_bitset_seconds": 0.15,
            "verify_speedup": 2.0,
        }
    )


def _serve_record():
    return {
        "schema": "repro-serve-bench-v1",
        "scenario": "smoke",
        "method": "ggsx",
        "clients": 2,
        "requests": 10,
        "rps": 0.0,
        "q50_ms": 3.0,
        "q90_ms": 4.0,
        "q99_ms": 5.0,
        "mean_ms": 3.5,
        "max_ms": 5.0,
        "qps": 100.0,
        "errors": 0,
        "seconds": 0.1,
        "kpis": [{"kpi": "q50_ms <= 2000", "actual": 3.0, "passed": True}],
        "passed": True,
    }


class TestCheckedInRecords:
    @pytest.mark.parametrize(
        "name", sorted(p.name for p in REPO.glob("BENCH_*.json"))
    )
    def test_every_checked_in_record_validates(self, name):
        assert validate_bench_file(REPO / name)


class TestRecognition:
    def test_recognizes_all_families(self):
        assert is_bench_record(_graph_core_record())
        assert is_bench_record(_hot_path_record())
        assert is_bench_record(_serve_record())

    def test_rejects_non_bench_documents(self):
        assert not is_bench_record({"schema": "repro-sweep-v1"})
        assert not is_bench_record([1, 2, 3])
        assert not is_bench_record("text")
        with pytest.raises(BenchValidationError):
            bench_validate({"bench": "unknown-kind"})


class TestValidation:
    def test_valid_records_pass(self):
        assert bench_validate(_graph_core_record()) == "graph-core-matcher"
        assert bench_validate(_hot_path_record()) == "csr-query-hot-path"
        assert bench_validate(_serve_record()) == "repro-serve-bench-v1"

    def test_missing_field_rejected(self):
        record = _graph_core_record()
        del record["hits"]
        with pytest.raises(BenchValidationError, match="hits"):
            bench_validate(record)

    def test_wrong_type_rejected(self):
        record = _graph_core_record()
        record["graphs"] = "many"
        with pytest.raises(BenchValidationError, match="graphs"):
            bench_validate(record)

    def test_edited_speedup_rejected(self):
        record = _graph_core_record()
        record["speedup"] = 7.5  # timings still say 2.0
        with pytest.raises(BenchValidationError, match="edited"):
            bench_validate(record)

    def test_negative_timing_rejected(self):
        record = _graph_core_record()
        record["csr_seconds"] = -0.1
        with pytest.raises(BenchValidationError):
            bench_validate(record)

    def test_flipped_kpi_verdict_rejected(self):
        record = _serve_record()
        record["kpis"][0]["passed"] = False
        with pytest.raises(BenchValidationError, match="verdict"):
            bench_validate(record)

    def test_kpi_actual_must_match_recorded_metric(self):
        record = _serve_record()
        record["kpis"][0]["actual"] = 1.0  # q50_ms says 3.0
        with pytest.raises(BenchValidationError, match="disagrees"):
            bench_validate(record)

    def test_overall_passed_must_conjoin_kpis(self):
        record = _serve_record()
        record["kpis"][0] = {"kpi": "q50_ms <= 1", "actual": 3.0, "passed": False}
        with pytest.raises(BenchValidationError, match="conjoin"):
            bench_validate(record)

    def test_quantile_above_max_rejected(self):
        record = _serve_record()
        record["q99_ms"] = 50.0
        with pytest.raises(BenchValidationError, match="maximum"):
            bench_validate(record)

    def test_hot_path_record_requires_seal(self):
        record = _hot_path_record()
        del record["record_digest"]
        with pytest.raises(BenchValidationError, match="seal"):
            bench_validate(record)


class TestSealing:
    def test_seal_round_trips(self):
        record = _hot_path_record()
        assert record["record_digest"] == record_digest(record)
        assert bench_validate(record)

    def test_edit_after_seal_detected(self):
        record = _hot_path_record()
        record["hits"] = record["hits"] + 1
        with pytest.raises(BenchValidationError, match="mismatch"):
            bench_validate(record)

    def test_reseal_repairs(self):
        record = _hot_path_record()
        record["hits"] = record["hits"] + 1
        assert bench_validate(bench_seal(record))

    def test_seal_is_order_independent(self):
        record = _hot_path_record()
        shuffled = dict(reversed(list(record.items())))
        assert record_digest(shuffled) == record["record_digest"]

    def test_legacy_records_validate_unsealed_but_reject_bad_seals(self):
        record = _graph_core_record()
        assert bench_validate(record)  # no digest required
        record["record_digest"] = "0" * 32
        with pytest.raises(BenchValidationError, match="mismatch"):
            bench_validate(record)


class TestFileAndCliWiring:
    def test_validate_bench_file_not_found(self, tmp_path):
        with pytest.raises(BenchValidationError, match="not found"):
            validate_bench_file(tmp_path / "BENCH_missing.json")

    def test_validate_bench_file_bad_json(self, tmp_path):
        path = tmp_path / "BENCH_broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(BenchValidationError, match="JSON"):
            validate_bench_file(path)

    def test_report_renders_valid_record(self, tmp_path, capsys):
        from repro.cli.main import main

        path = tmp_path / "BENCH_ok.json"
        path.write_text(json.dumps(_hot_path_record()), encoding="utf-8")
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "csr-query-hot-path" in out
        assert "sealed:" in out

    def test_report_rejects_tampered_record(self, tmp_path, capsys):
        from repro.cli.main import main

        record = _graph_core_record()
        record["speedup"] = 9.0
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps(record), encoding="utf-8")
        assert main(["report", str(path)]) == 2
        assert "edited" in capsys.readouterr().err
