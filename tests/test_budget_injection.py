"""Failure injection: budgets expiring inside every pipeline stage.

The paper's methodology depends on experiments failing *cleanly* at
the 8-hour mark.  These tests drive expired and near-expired budgets
through every index's build, filter and verify paths and assert the
failure is a catchable BudgetExceeded — never a wrong answer.
"""

import time

import pytest

from repro.generators.graphgen import GraphGenConfig, generate_dataset
from repro.generators.queries import generate_queries
from repro.indexes import (
    CTIndex,
    GCodeIndex,
    GIndex,
    GraphGrepSXIndex,
    GrapesIndex,
    TreeDeltaIndex,
)
from repro.utils.budget import Budget, BudgetExceeded

FACTORIES = {
    "ggsx": lambda: GraphGrepSXIndex(max_path_edges=3),
    "grapes": lambda: GrapesIndex(max_path_edges=3, workers=2),
    "ctindex": lambda: CTIndex(fingerprint_bits=256, feature_edges=3),
    "gcode": lambda: GCodeIndex(),
    "gindex": lambda: GIndex(max_fragment_edges=3, support_ratio=0.2),
    "tree+delta": lambda: TreeDeltaIndex(max_feature_edges=3, support_ratio=0.2),
}


@pytest.fixture(scope="module")
def dataset():
    config = GraphGenConfig(
        num_graphs=20, mean_nodes=14, mean_density=0.15, num_labels=4
    )
    return generate_dataset(config, seed=99)


@pytest.fixture(scope="module")
def queries(dataset):
    return generate_queries(dataset, 3, 5, seed=0)


def _expired() -> Budget:
    budget = Budget(0.0)
    time.sleep(0.002)
    return budget


@pytest.mark.parametrize("name", list(FACTORIES))
class TestExpiredBudgets:
    def test_build_raises(self, name, dataset):
        with pytest.raises(BudgetExceeded):
            FACTORIES[name]().build(dataset, budget=_expired())

    def test_filter_raises_or_completes(self, name, dataset, queries):
        """Filtering with an expired budget either raises BudgetExceeded
        or returns a *correct* candidate set — never garbage."""
        index = FACTORIES[name]()
        index.build(dataset)
        reference = index.filter(queries[0])
        try:
            candidates = index.filter(queries[0], budget=_expired())
        except BudgetExceeded:
            return
        assert candidates == reference

    def test_generous_budget_is_transparent(self, name, dataset, queries):
        index = FACTORIES[name]()
        index.build(dataset, budget=Budget(3600.0))
        relaxed = FACTORIES[name]()
        relaxed.build(dataset)
        for query in queries:
            assert index.query(query, budget=Budget(3600.0)).answers == \
                relaxed.query(query).answers


class TestMidBuildExpiry:
    """A budget that expires *during* the build must abort the build."""

    @pytest.mark.parametrize("name", ["gindex", "tree+delta"])
    def test_mining_interrupted(self, name, dataset):
        # Mining at a permissive support on a denser dataset takes well
        # over 5 ms; a 5 ms budget must trip mid-mine.
        config = GraphGenConfig(
            num_graphs=20, mean_nodes=20, mean_density=0.25, num_labels=2
        )
        dense = generate_dataset(config, seed=3)
        factory = {
            "gindex": lambda: GIndex(max_fragment_edges=6, support_ratio=0.1),
            "tree+delta": lambda: TreeDeltaIndex(
                max_feature_edges=6, support_ratio=0.1
            ),
        }[name]
        with pytest.raises(BudgetExceeded):
            factory().build(dense, budget=Budget(0.005))
