"""PR 6: the CSR graph core — byte-identical to the dict builder.

Four properties are pinned here:

1. **Accessor parity** — :class:`CSRGraph` answers every read accessor
   (labels, degrees, sorted neighbors, edges, label groups, components,
   induced subgraphs) exactly like the dict :class:`Graph` it was built
   from, and its vectorized extras (``candidate_vertices``,
   ``neighbor_label_counts``) match brute force over the dict graph.
2. **Transport parity** — ``CSRDataset.from_packed`` over the arena
   wire format reconstructs the same graphs as ``from_dataset`` over
   the unpacked dict graphs, and the worker-side cache keys attachments
   per core.
3. **Byte identity** — for *all seven* index methods, a cell evaluated
   under the CSR core canonicalizes to exactly the same JSON as under
   the dict core: same statuses, candidate and answer counts,
   false-positive ratios, index sizes, and build details.
4. **Matcher parity** — a hypothesis property: VF2 enumerates the same
   embedding set and Ullmann the same boolean on CSR and dict hosts
   over random labeled graphs, including disconnected queries and
   label-disjoint early exits.
"""

import json
import pickle
from dataclasses import asdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arena import (
    DatasetArena,
    attach_csr_dataset,
    attach_dataset,
    cached_dataset,
    clear_worker_caches,
)
from repro.core.runner import evaluate_method, make_method
from repro.core.serialization import canonical_cell
from repro.generators.graphgen import GraphGenConfig, generate_dataset
from repro.generators.queries import generate_queries
from repro.graphs.csr import (
    GRAPH_CORE_ENV,
    CSRDataset,
    CSRGraph,
    active_graph_core,
    as_core_dataset,
)
from repro.graphs.dataset import pack_dataset
from repro.graphs.graph import Graph
from repro.indexes import ALL_INDEX_CLASSES
from repro.isomorphism import SubgraphMatcher, ullmann_is_subgraph

#: All benchmarked methods, with settings small enough that each
#: build stays well under a second on the module dataset.
METHOD_CONFIGS = {
    "naive": {},
    "ggsx": {"max_path_edges": 3},
    "grapes": {"max_path_edges": 3, "workers": 2},
    "ctindex": {"fingerprint_bits": 256, "feature_edges": 3},
    "gcode": {"path_depth": 2, "top_eigenvalues": 2, "counter_buckets": 16},
    "gindex": {"max_fragment_edges": 3, "support_ratio": 0.25},
    "tree+delta": {"max_feature_edges": 3, "support_ratio": 0.25},
    "cni": {"mask_bits": 64, "radius": 1},
}

assert set(METHOD_CONFIGS) == set(ALL_INDEX_CLASSES)

BUDGETS = {"build_budget_seconds": 60.0, "query_budget_seconds": 60.0}


@pytest.fixture(scope="module")
def dataset():
    config = GraphGenConfig(
        num_graphs=8, mean_nodes=14, mean_density=0.08, num_labels=5
    )
    return generate_dataset(config, seed=23)


@pytest.fixture(scope="module")
def queries(dataset):
    return generate_queries(dataset, 3, 4, seed=7)


@pytest.fixture(scope="module")
def csr(dataset):
    return CSRDataset.from_dataset(dataset)


# ----------------------------------------------------------------------
# core selection
# ----------------------------------------------------------------------


class TestCoreToggle:
    def test_default_is_csr(self, monkeypatch):
        monkeypatch.delenv(GRAPH_CORE_ENV, raising=False)
        assert active_graph_core() == "csr"

    def test_env_selects_dict(self, monkeypatch):
        monkeypatch.setenv(GRAPH_CORE_ENV, "dict")
        assert active_graph_core() == "dict"

    def test_unrecognized_value_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv(GRAPH_CORE_ENV, "linked-list")
        assert active_graph_core() == "csr"

    def test_as_core_dataset_is_idempotent(self, dataset, monkeypatch):
        monkeypatch.setenv(GRAPH_CORE_ENV, "csr")
        converted = as_core_dataset(dataset)
        assert isinstance(converted, CSRDataset)
        assert as_core_dataset(converted) is converted

    def test_dict_core_passes_datasets_through(self, dataset, monkeypatch):
        monkeypatch.setenv(GRAPH_CORE_ENV, "dict")
        assert as_core_dataset(dataset) is dataset


# ----------------------------------------------------------------------
# accessor parity
# ----------------------------------------------------------------------


class TestAccessorParity:
    def test_read_api_matches_dict_graph(self, dataset, csr):
        for g, c in zip(dataset, csr):
            assert c.graph_id == g.graph_id
            assert c.order == g.order and c.size == g.size
            assert c.labels == g.labels
            assert c.density() == pytest.approx(g.density())
            assert c.average_degree() == pytest.approx(g.average_degree())
            for v in g.vertices():
                assert c.label(v) == g.label(v)
                assert c.degree(v) == g.degree(v)
                assert list(c.neighbors(v)) == sorted(g.neighbor_set(v))
                assert c.neighbor_set(v) == frozenset(g.neighbor_set(v))
                for w in g.vertices():
                    assert c.has_edge(v, w) == g.has_edge(v, w)
            assert set(c.edges()) == set(g.edges())
            assert c.vertices_by_label() == g.vertices_by_label()
            assert c.label_histogram() == g.label_histogram()
            assert c.distinct_labels() == g.distinct_labels()
            assert sorted(map(sorted, c.connected_components())) == sorted(
                map(sorted, g.connected_components())
            )
            assert c.is_connected() == g.is_connected()
            assert c == g

    def test_neighbors_are_sorted_tuples(self, csr):
        for c in csr:
            for v in c.vertices():
                row = c.neighbors(v)
                assert isinstance(row, tuple)
                assert list(row) == sorted(row)

    def test_candidate_vertices_matches_brute_force(self, dataset, csr):
        for g, c in zip(dataset, csr):
            for label in sorted(g.distinct_labels()):
                for min_degree in (0, 1, 2, 4):
                    expected = tuple(
                        v
                        for v in g.vertices()
                        if g.label(v) == label and g.degree(v) >= min_degree
                    )
                    assert c.candidate_vertices(label, min_degree) == expected
            assert c.candidate_vertices("no-such-label") == ()

    def test_neighbor_label_counts_matches_brute_force(self, dataset, csr):
        for g, c in zip(dataset, csr):
            counts = c.neighbor_label_counts()
            for v in g.vertices():
                expected: dict = {}
                for w in g.neighbor_set(v):
                    expected[g.label(w)] = expected.get(g.label(w), 0) + 1
                assert counts[v] == expected

    def test_induced_subgraph_matches(self, dataset, csr):
        for g, c in zip(dataset, csr):
            keep = list(g.vertices())[:: 2]
            sub_g, map_g = g.induced_subgraph(keep)
            sub_c, map_c = c.induced_subgraph(keep)
            assert map_c == map_g
            assert sub_c == sub_g

    def test_csr_graph_is_immutable(self, csr):
        first = next(iter(csr))
        with pytest.raises(AttributeError):
            first.add_edge  # noqa: B018 — no mutation API exists


# ----------------------------------------------------------------------
# transport parity: packed bytes and the arena
# ----------------------------------------------------------------------


class TestTransportParity:
    def test_from_packed_equals_from_dataset(self, dataset, csr):
        attached = CSRDataset.from_packed(pack_dataset(dataset))
        assert attached.name == csr.name
        assert len(attached) == len(csr)
        for a, b in zip(attached, csr):
            assert a.graph_id == b.graph_id
            assert a == b

    def test_attach_csr_matches_dict_attach(self, dataset):
        arena = DatasetArena.create(dataset)
        try:
            csr_view = attach_csr_dataset(arena.handle)
            dict_view = attach_dataset(arena.handle)
            for a, g in zip(csr_view, dict_view):
                assert a == g
        finally:
            arena.close()

    def test_cached_dataset_is_keyed_per_core(self, dataset, monkeypatch):
        arena = DatasetArena.create(dataset)
        try:
            clear_worker_caches()
            monkeypatch.setenv(GRAPH_CORE_ENV, "csr")
            csr_view = cached_dataset(arena.handle)
            assert all(isinstance(g, CSRGraph) for g in csr_view)
            monkeypatch.setenv(GRAPH_CORE_ENV, "dict")
            dict_view = cached_dataset(arena.handle)
            assert all(isinstance(g, Graph) for g in dict_view)
            monkeypatch.setenv(GRAPH_CORE_ENV, "csr")
            assert cached_dataset(arena.handle) is csr_view
        finally:
            clear_worker_caches()
            arena.close()


# ----------------------------------------------------------------------
# byte identity across cores, all seven methods
# ----------------------------------------------------------------------


def _cell_json(cell) -> str:
    """A cell's canonical form as sorted-key JSON bytes-for-bytes."""
    return json.dumps(asdict(canonical_cell(cell)), sort_keys=True)


class TestByteIdentityAcrossCores:
    @pytest.mark.parametrize("name", sorted(ALL_INDEX_CLASSES))
    def test_canonical_cell_identical(self, name, dataset, queries, monkeypatch):
        workloads = {4: queries}
        config = METHOD_CONFIGS[name]
        monkeypatch.setenv(GRAPH_CORE_ENV, "dict")
        dict_json = _cell_json(
            evaluate_method(name, dataset, workloads, method_config=config, **BUDGETS)
        )
        monkeypatch.setenv(GRAPH_CORE_ENV, "csr")
        csr_json = _cell_json(
            evaluate_method(name, dataset, workloads, method_config=config, **BUDGETS)
        )
        assert csr_json == dict_json


class TestNoCallerMutatesAdjacency:
    def test_pipeline_leaves_adjacency_untouched(self, dataset, queries):
        """Building and querying every method must not change any data
        graph — the packed bytes are an exact adjacency snapshot (the
        ``neighbors()`` live-set leak this PR fixed made this possible
        to violate from any index builder)."""
        before = pack_dataset(dataset)
        for name, config in METHOD_CONFIGS.items():
            index = make_method(name, config)
            index.build(dataset)
            for query in queries:
                index.query(query)
        assert pack_dataset(dataset) == before


# ----------------------------------------------------------------------
# matcher parity (hypothesis property)
# ----------------------------------------------------------------------


@st.composite
def labeled_graphs(draw, max_vertices=8, labels="ABC"):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    vertex_labels = draw(
        st.lists(st.sampled_from(labels), min_size=n, max_size=n)
    )
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = (
        draw(st.lists(st.sampled_from(possible), unique=True))
        if possible
        else []
    )
    return Graph(vertex_labels, edges)


def _embedding_set(query, data):
    return sorted(
        tuple(sorted(mapping.items()))
        for mapping in SubgraphMatcher(query, data).iter_embeddings()
    )


class TestMatcherParity:
    @settings(max_examples=60, deadline=None)
    @given(data=labeled_graphs(), query=labeled_graphs(max_vertices=4))
    def test_vf2_and_ullmann_agree_across_cores(self, data, query):
        csr_host = CSRGraph.from_graph(data)
        dict_embeddings = _embedding_set(query, data)
        assert _embedding_set(query, csr_host) == dict_embeddings
        expected = ullmann_is_subgraph(query, data)
        assert ullmann_is_subgraph(query, csr_host) == expected
        assert expected == bool(dict_embeddings)

    def test_disconnected_query(self):
        data = Graph("ABAB", [(0, 1), (2, 3)])
        query = Graph("AB", [])  # two isolated query vertices
        assert _embedding_set(query, CSRGraph.from_graph(data)) == _embedding_set(
            query, data
        )

    def test_label_disjoint_query_early_exits_empty(self):
        data = Graph("AAA", [(0, 1), (1, 2)])
        query = Graph(["Z"])
        csr_host = CSRGraph.from_graph(data)
        assert not SubgraphMatcher(query, csr_host).exists()
        assert not ullmann_is_subgraph(query, csr_host)
        assert csr_host.candidate_vertices("Z") == ()

    def test_pickle_round_trip_preserves_csr_graph(self, csr):
        for graph in csr:
            clone = pickle.loads(pickle.dumps(graph))
            assert clone == graph
