"""The content-addressed index artifact store.

Covers the PR's byte-identity contract end to end: every method's
store round-trip reproduces bit-identical ``QueryResult``s (candidates,
answers, FP ratio) against a fresh build; corrupt / stale / mismatched
artifacts are rejected loudly; the memory tier is a bounded LRU; the
disk tier survives process "restarts" (fresh store instances); and the
sweep layer reuses builds across cells of different query workloads
with canonical byte-identity cold vs warm.
"""

import pickle

import pytest

from repro.core.runner import evaluate_method, make_method
from repro.core.serialization import canonical_cell
from repro.generators.graphgen import GraphGenConfig, generate_dataset
from repro.generators.queries import generate_queries
from repro.graphs.dataset import dataset_fingerprint
from repro.indexes.store import (
    IndexStore,
    IndexStoreError,
    artifact_address,
    artifact_from_index,
    clear_stores,
    materialize_artifact,
    read_artifact,
    read_artifact_header,
    shared_store,
    write_artifact,
)

METHOD_CONFIGS = {
    "naive": {},
    "ggsx": {"max_path_edges": 3},
    "grapes": {"max_path_edges": 3, "workers": 2},
    "ctindex": {"fingerprint_bits": 256, "feature_edges": 3},
    "gcode": {},
    "gindex": {"max_fragment_edges": 3, "support_ratio": 0.25},
    "tree+delta": {"max_feature_edges": 3, "support_ratio": 0.25},
}


@pytest.fixture(autouse=True)
def _fresh_stores():
    clear_stores()
    yield
    clear_stores()


@pytest.fixture(scope="module")
def dataset():
    config = GraphGenConfig(
        num_graphs=15, mean_nodes=10, mean_density=0.25, num_labels=3
    )
    return generate_dataset(config, seed=55)


@pytest.fixture(scope="module")
def digest(dataset):
    return dataset_fingerprint(dataset)


@pytest.fixture(scope="module")
def queries(dataset):
    out = []
    for size in (3, 4):
        out.extend(generate_queries(dataset, 3, size, seed=size))
    return out


def build(name, dataset):
    index = make_method(name, METHOD_CONFIGS[name])
    index.build(dataset)
    return index


# ----------------------------------------------------------------------
# round trips: fresh-built vs store-loaded, bit for bit
# ----------------------------------------------------------------------


class TestRoundTrip:
    @pytest.mark.parametrize("name", list(METHOD_CONFIGS))
    def test_store_loaded_results_bit_identical(
        self, name, dataset, digest, queries, tmp_path
    ):
        """The artifact is snapshotted right after the build, so the
        materialized index replays the exact post-build state — even
        Tree+Δ, whose query-time feature adoption must restart from
        the same point."""
        store = IndexStore(tmp_path)
        built = build(name, dataset)
        store.put(artifact_from_index(built, digest))
        expected = [built.query(q) for q in queries]

        reloaded_store = IndexStore(tmp_path)  # cold process: disk only
        artifact = reloaded_store.get(
            name, make_method(name, METHOD_CONFIGS[name]).index_params(), digest
        )
        assert artifact is not None
        loaded = materialize_artifact(artifact, dataset)
        got = [loaded.query(q) for q in queries]
        for fresh, warm in zip(expected, got):
            assert warm.candidates == fresh.candidates
            assert warm.answers == fresh.answers
            assert warm.false_positive_ratio == fresh.false_positive_ratio

    @pytest.mark.parametrize("name", list(METHOD_CONFIGS))
    def test_index_params_reconstruct_the_method(self, name, dataset):
        """``index_params()`` is a complete constructor echo: feeding it
        back to ``make_method`` yields an instance with equal params."""
        index = make_method(name, METHOD_CONFIGS[name])
        twin = make_method(name, index.index_params())
        assert twin.index_params() == index.index_params()

    def test_default_and_explicit_params_share_an_address(self, digest):
        """Content addressing ignores how the params were spelled."""
        implicit = make_method("ggsx", None)  # default max_path_edges=4
        explicit = make_method("ggsx", {"max_path_edges": 4})
        assert artifact_address(
            "ggsx", implicit.index_params(), digest
        ) == artifact_address("ggsx", explicit.index_params(), digest)

    def test_different_params_different_address(self, digest):
        a = make_method("ggsx", {"max_path_edges": 3}).index_params()
        b = make_method("ggsx", {"max_path_edges": 4}).index_params()
        assert artifact_address("ggsx", a, digest) != artifact_address(
            "ggsx", b, digest
        )

    def test_materialized_instances_do_not_share_mutable_state(
        self, dataset, digest, queries
    ):
        """Tree+Δ adopts features at query time; two instances
        materialized from one in-memory payload must not contaminate
        each other (or the stored payload)."""
        store = IndexStore()
        built = build("tree+delta", dataset)
        store.put(artifact_from_index(built, digest))
        params = built.index_params()
        first = materialize_artifact(store.get("tree+delta", params, digest), dataset)
        for q in queries:
            first.query(q)  # may adopt Δ features into `first`
        second = materialize_artifact(store.get("tree+delta", params, digest), dataset)
        assert second._delta_ids == {}  # pristine post-build state

    def test_export_requires_a_completed_build(self, dataset):
        index = make_method("ggsx", METHOD_CONFIGS["ggsx"])
        with pytest.raises(RuntimeError, match="no completed build"):
            index.export_payload()


# ----------------------------------------------------------------------
# rejection paths: corrupt, stale, mismatched
# ----------------------------------------------------------------------


class TestProvenanceClock:
    """``created_at`` is injectable provenance, never identity (the PR 6
    determinism fix: an inline ``time.time()`` made cold and warm
    snapshots of the same build compare unequal)."""

    def test_injected_clock_is_respected(self, dataset, digest):
        index = build("naive", dataset)
        artifact = artifact_from_index(index, digest, clock=lambda: 123.5)
        assert artifact.provenance.created_at == 123.5

    def test_explicit_created_at_wins_over_clock(self, dataset, digest):
        index = build("naive", dataset)
        artifact = artifact_from_index(
            index, digest, created_at=7.0, clock=lambda: 123.5
        )
        assert artifact.provenance.created_at == 7.0

    def test_created_at_excluded_from_equality(self, dataset, digest):
        index = build("naive", dataset)
        cold = artifact_from_index(index, digest, clock=lambda: 1.0)
        warm = artifact_from_index(index, digest, clock=lambda: 2.0)
        assert cold.provenance.created_at != warm.provenance.created_at
        assert cold.provenance == warm.provenance
        assert cold.header == warm.header
        assert cold.address == warm.address


class TestRejection:
    def _stored(self, dataset, digest, tmp_path):
        store = IndexStore(tmp_path)
        index = build("ggsx", dataset)
        address = store.put(artifact_from_index(index, digest))
        return store, index, store.path_of(address)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.idx"
        path.write_bytes(b"this is not an artifact")
        with pytest.raises(IndexStoreError, match="not an index artifact"):
            read_artifact(path)

    def test_truncated_payload_rejected(self, dataset, digest, tmp_path):
        _, _, path = self._stored(dataset, digest, tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(IndexStoreError, match="corrupt artifact payload"):
            read_artifact(path)

    def test_stale_schema_rejected(self, dataset, digest, tmp_path):
        _, index, path = self._stored(dataset, digest, tmp_path)
        with open(path, "wb") as handle:
            pickle.dump("repro-index-artifact-v0", handle)
            pickle.dump(None, handle)
        with pytest.raises(IndexStoreError, match="stale or foreign"):
            read_artifact_header(path)

    def test_mismatched_dataset_digest_rejected(self, dataset, digest, tmp_path):
        _, _, path = self._stored(dataset, digest, tmp_path)
        with pytest.raises(IndexStoreError, match="different dataset"):
            read_artifact(path, expect_digest=digest ^ 1)

    def test_corrupt_disk_artifact_is_a_get_miss_not_a_crash(
        self, dataset, digest, tmp_path
    ):
        store, index, path = self._stored(dataset, digest, tmp_path)
        path.write_bytes(b"bitrot")
        cold = IndexStore(tmp_path)
        assert cold.get("ggsx", index.index_params(), digest) is None
        assert cold.stats.misses == 1

    def test_renamed_artifact_is_not_served_under_the_wrong_address(
        self, dataset, digest, tmp_path
    ):
        """A copied/renamed file whose header describes another build
        must be a miss, not a silently wrong index."""
        store, index, path = self._stored(dataset, digest, tmp_path)
        other_params = make_method("ggsx", {"max_path_edges": 4}).index_params()
        forged = tmp_path / (
            artifact_address("ggsx", other_params, digest) + ".idx"
        )
        forged.write_bytes(path.read_bytes())
        cold = IndexStore(tmp_path)
        assert cold.get("ggsx", other_params, digest) is None
        # ...and gc treats the misnamed file as garbage.
        assert cold.gc()["removed_corrupt"] == 1

    def test_materialize_refuses_wrong_sized_dataset(self, dataset, digest):
        index = build("ggsx", dataset)
        artifact = artifact_from_index(index, digest)
        smaller = dataset.subset(range(len(dataset) - 1))
        with pytest.raises(IndexStoreError, match="built over"):
            materialize_artifact(artifact, smaller)


# ----------------------------------------------------------------------
# tiers: memory LRU over disk
# ----------------------------------------------------------------------


class TestTiers:
    def test_memory_lru_evicts_oldest(self, dataset, digest):
        store = IndexStore(memory_items=2)
        addresses = []
        for edges in (1, 2, 3):
            index = make_method("ggsx", {"max_path_edges": edges})
            index.build(dataset)
            addresses.append(store.put(artifact_from_index(index, digest)))
        assert len(store) == 2
        # Oldest (max_path_edges=1) was evicted; memory-only store -> miss.
        params = make_method("ggsx", {"max_path_edges": 1}).index_params()
        assert store.get("ggsx", params, digest) is None

    def test_disk_hit_promotes_into_memory(self, dataset, digest, tmp_path):
        warm = IndexStore(tmp_path)
        index = build("ggsx", dataset)
        warm.put(artifact_from_index(index, digest))
        cold = IndexStore(tmp_path)
        assert len(cold) == 0
        assert cold.get("ggsx", index.index_params(), digest) is not None
        assert cold.stats.disk_hits == 1
        assert len(cold) == 1
        assert cold.get("ggsx", index.index_params(), digest) is not None
        assert cold.stats.memory_hits == 1

    def test_memory_only_store_without_root(self, dataset, digest):
        store = IndexStore()
        index = build("naive", dataset)
        store.put(artifact_from_index(index, digest))
        assert store.get("naive", {}, digest) is not None
        with pytest.raises(IndexStoreError, match="no on-disk tier"):
            store.path_of("whatever")

    def test_shared_store_is_per_root_singleton(self, tmp_path):
        assert shared_store(None) is shared_store(None)
        assert shared_store(tmp_path) is shared_store(str(tmp_path))
        assert shared_store(tmp_path) is not shared_store(None)

    def test_atomic_write_leaves_no_temp_files(self, dataset, digest, tmp_path):
        store = IndexStore(tmp_path)
        index = build("ggsx", dataset)
        store.put(artifact_from_index(index, digest))
        leftovers = [p for p in tmp_path.iterdir() if not p.name.endswith(".idx")]
        assert leftovers == []


# ----------------------------------------------------------------------
# maintenance: ls / rm / gc primitives
# ----------------------------------------------------------------------


class TestMaintenance:
    def _populate(self, dataset, digest, tmp_path, edges=(1, 2, 3)):
        store = IndexStore(tmp_path)
        addresses = []
        for n in edges:
            index = make_method("ggsx", {"max_path_edges": n})
            index.build(dataset)
            addresses.append(store.put(artifact_from_index(index, digest)))
        return store, addresses

    def test_entries_reports_headers_and_corruption(
        self, dataset, digest, tmp_path
    ):
        store, addresses = self._populate(dataset, digest, tmp_path)
        (tmp_path / "broken.idx").write_bytes(b"junk")
        entries = store.entries()
        assert len(entries) == 4
        unreadable = [path for path, header in entries if header is None]
        assert [p.name for p in unreadable] == ["broken.idx"]

    def test_remove_deletes_both_tiers(self, dataset, digest, tmp_path):
        store, addresses = self._populate(dataset, digest, tmp_path, edges=(2,))
        assert store.remove(addresses[0]) is True
        assert store.remove(addresses[0]) is False
        assert len(store) == 0
        assert store.entries() == []

    def test_gc_removes_corrupt_and_misnamed(self, dataset, digest, tmp_path):
        store, addresses = self._populate(dataset, digest, tmp_path, edges=(2, 3))
        (tmp_path / "broken.idx").write_bytes(b"junk")
        # A valid artifact at the wrong address must go too (its name
        # no longer proves its content).
        victim = store.path_of(addresses[0])
        victim.rename(tmp_path / "ggsx-0000000000000000-0000000000000000.idx")
        report = store.gc()
        assert report["removed_corrupt"] == 2
        assert report["kept"] == 1

    def test_gc_max_bytes_keeps_newest(self, dataset, digest, tmp_path):
        import os
        import time

        store, addresses = self._populate(dataset, digest, tmp_path)
        paths = [store.path_of(a) for a in addresses]
        now = time.time()
        for age, path in enumerate(reversed(paths)):
            os.utime(path, (now - age * 100, now - age * 100))
        keep_bytes = paths[-1].stat().st_size  # newest file only
        report = store.gc(max_bytes=keep_bytes)
        assert report["removed_evicted"] == 2
        assert report["kept"] == 1
        assert paths[-1].exists() and not paths[0].exists()

    def test_gc_evicts_strictly_oldest_first(self, dataset, digest, tmp_path):
        """Eviction is oldest-modified-first even when skipping the big
        newest file could have 'fit more': the hot artifact survives."""
        import os
        import time

        store, addresses = self._populate(dataset, digest, tmp_path, edges=(2, 4))
        small_old, big_new = (store.path_of(a) for a in addresses)
        assert big_new.stat().st_size > small_old.stat().st_size
        now = time.time()
        os.utime(small_old, (now - 500, now - 500))
        os.utime(big_new, (now, now))
        report = store.gc(max_bytes=big_new.stat().st_size)
        assert report["removed_evicted"] == 1
        assert big_new.exists() and not small_old.exists()


# ----------------------------------------------------------------------
# the cell layer: reuse across workloads, provenance tagging
# ----------------------------------------------------------------------


class TestCellReuse:
    def test_cells_with_different_workloads_share_one_build(
        self, dataset, queries, tmp_path
    ):
        """The store key is workload-free, so cells that query the same
        (method, params, dataset) with different query sizes reuse one
        build — the acceptance property for within-sweep reuse."""
        small = {3: [q for q in queries if q.size == 3]}
        large = {4: [q for q in queries if q.size == 4]}
        first = evaluate_method(
            "ggsx",
            dataset,
            small,
            method_config=METHOD_CONFIGS["ggsx"],
            index_store_dir=str(tmp_path),
        )
        second = evaluate_method(
            "ggsx",
            dataset,
            large,
            method_config=METHOD_CONFIGS["ggsx"],
            index_store_dir=str(tmp_path),
        )
        assert first.provenance["reused"] is False
        assert second.provenance["reused"] is True
        assert second.provenance["artifact"] == first.provenance["artifact"]
        # Provenance timings, not fake ones: the reused cell reports the
        # original build's measured seconds and exact size.
        assert second.build_seconds == first.build_seconds
        assert second.index_bytes == first.index_bytes
        assert second.build_details == first.build_details

    def test_reuse_off_rebuilds_but_still_stores(self, dataset, queries, tmp_path):
        workloads = {3: queries[:2]}
        config = METHOD_CONFIGS["ggsx"]
        cold = evaluate_method(
            "ggsx", dataset, workloads, method_config=config,
            index_store_dir=str(tmp_path),
        )
        rebuilt = evaluate_method(
            "ggsx", dataset, workloads, method_config=config,
            index_store_dir=str(tmp_path), reuse_indexes=False,
        )
        assert rebuilt.provenance["reused"] is False
        assert canonical_cell(rebuilt) == canonical_cell(cold)

    def test_failed_builds_are_not_stored(self, dataset, queries, tmp_path):
        failed = evaluate_method(
            "ggsx",
            dataset,
            {3: queries[:2]},
            method_config=METHOD_CONFIGS["ggsx"],
            build_budget_seconds=0.0,
            index_store_dir=str(tmp_path),
        )
        assert failed.build_status == "timeout"
        assert failed.provenance == {}
        assert IndexStore(tmp_path).entries() == []
        # And the next (unbudgeted) run must therefore build fresh.
        fresh = evaluate_method(
            "ggsx",
            dataset,
            {3: queries[:2]},
            method_config=METHOD_CONFIGS["ggsx"],
            index_store_dir=str(tmp_path),
        )
        assert fresh.build_status == "ok"
        assert fresh.provenance["reused"] is False

    def test_provenance_never_reaches_serialization(self, dataset, queries, tmp_path):
        from repro.core.serialization import cell_to_dict

        cell = evaluate_method(
            "ggsx",
            dataset,
            {3: queries[:2]},
            method_config=METHOD_CONFIGS["ggsx"],
            index_store_dir=str(tmp_path),
        )
        assert cell.provenance  # tagged...
        assert "provenance" not in cell_to_dict(cell)  # ...but never saved
        assert canonical_cell(cell).provenance == {}


# ----------------------------------------------------------------------
# lineage: incremental updates as first-class artifacts (PR 8)
# ----------------------------------------------------------------------


class TestLineage:
    def updated_pair(self, dataset):
        """Build, update through a delta, return (artifact, new_digest,
        parent_address, delta) for the updated index."""
        from repro.graphs.dataset import (
            DatasetDelta,
            apply_delta,
            delta_fingerprint,
        )
        from tests.testkit import triangle

        index = build("grapes", dataset)
        parent = artifact_from_index(index, dataset_fingerprint(dataset))
        delta = DatasetDelta(added=(triangle(),), removed=(0,))
        after = apply_delta(dataset, delta)
        index.update(delta)
        artifact = artifact_from_index(
            index,
            dataset_fingerprint(after),
            parent=parent.address,
            delta_digest=delta_fingerprint(delta),
        )
        return parent, artifact, after, delta

    def test_lineage_address_pure_in_parent_and_delta(self, dataset):
        from repro.graphs.dataset import delta_fingerprint
        from repro.indexes.store import lineage_address

        parent, artifact, _, delta = self.updated_pair(dataset)
        ddigest = delta_fingerprint(delta)
        assert artifact.address == lineage_address(parent.address, ddigest)
        # Pure: recomputing from the same inputs gives the same address;
        # perturbing either input moves it.
        assert lineage_address(parent.address, ddigest) == artifact.address
        assert lineage_address(parent.address, ddigest + 1) != artifact.address
        assert (
            lineage_address(parent.address + "x", ddigest) != artifact.address
        )
        assert artifact.address.startswith("grapes-upd-")

    def test_strip_lineage_restores_the_content_address(self, dataset):
        from repro.indexes.store import strip_lineage

        parent, artifact, after, _ = self.updated_pair(dataset)
        stripped = strip_lineage(artifact)
        assert stripped.header.parent == ""
        assert stripped.header.delta_digest == 0
        # update == rebuild, so the stripped address must equal the
        # address a cold build over the post-delta dataset would get.
        cold = build("grapes", after)
        cold_artifact = artifact_from_index(
            cold, dataset_fingerprint(after)
        )
        assert stripped.address == cold_artifact.address
        assert stripped.payload == cold_artifact.payload

    def test_lineage_round_trips_through_disk(self, dataset, tmp_path):
        parent, artifact, after, _ = self.updated_pair(dataset)
        store = IndexStore(tmp_path / "store")
        store.put(parent)
        store.put(artifact)
        # Lineage artifacts live at their lineage address on disk; the
        # header round-trips parent and delta digest intact.
        loaded, _ = read_artifact(
            store.path_of(artifact.address),
            expect_digest=dataset_fingerprint(after),
        )
        assert loaded.address == artifact.address
        assert loaded.header.parent == parent.address
        assert loaded.header.delta_digest == artifact.header.delta_digest
        index = materialize_artifact(loaded, after)
        assert index.export_payload() == artifact.payload

    def test_gc_evicts_lineage_interiors_before_heads(
        self, dataset, tmp_path
    ):
        """Under a size cap, an old chain interior (something else's
        parent) goes before the head that depends on nothing."""
        import os
        import time

        parent, artifact, _, _ = self.updated_pair(dataset)
        store = IndexStore(tmp_path / "store")
        store.put(parent)
        store.put(artifact)
        parent_path = store.path_of(parent.address)
        head_path = store.path_of(artifact.address)
        now = time.time()
        # The head is *older* than its parent: mtime alone would evict
        # the head first, so survival proves the lineage ordering.
        os.utime(head_path, (now - 500, now - 500))
        os.utime(parent_path, (now, now))
        report = store.gc(max_bytes=head_path.stat().st_size)
        assert report["removed_evicted"] == 1
        assert head_path.exists() and not parent_path.exists()

    def test_corrupt_parent_leaves_update_path_cold_not_broken(
        self, dataset, tmp_path
    ):
        """A missing/corrupt parent is a store miss: the serve tier's
        update still works (it rebuilds), and the updated artifact is
        still retrievable at its own address."""
        parent, artifact, after, _ = self.updated_pair(dataset)
        store = IndexStore(tmp_path / "store")
        store.put(parent)
        store.put(artifact)
        store.path_of(parent.address).write_bytes(b"garbage")
        # A fresh store (cold memory tier) must treat the corrupt
        # parent as a plain miss.
        store = IndexStore(tmp_path / "store")
        assert (
            store.get(
                "grapes",
                dict(parent.header.index_params),
                dataset_fingerprint(dataset),
            )
            is None
        )
        loaded, _ = read_artifact(
            store.path_of(artifact.address),
            expect_digest=dataset_fingerprint(after),
        )
        index = materialize_artifact(loaded, after)
        assert index.export_payload() == artifact.payload
