"""CLI sweep/report end-to-end with a tiny injected profile."""

from dataclasses import replace

import pytest

import repro.cli.commands as commands
from repro.cli import main
from repro.core.presets import CI_PROFILE


@pytest.fixture()
def tiny_profile(monkeypatch):
    profile = replace(
        CI_PROFILE,
        nodes_values=(8, 12),
        graph_count_values=(6, 10),
        default_num_graphs=8,
        default_nodes=10,
        default_density=0.2,
        default_labels=3,
        query_sizes=(3,),
        queries_per_size=2,
        build_budget_seconds=10.0,
        query_budget_seconds=10.0,
        real_dataset_scale=0.01,
        real_dataset_names=("PCM",),
        method_configs={"ggsx": {"max_path_edges": 2}},
    )
    monkeypatch.setattr(commands, "active_profile", lambda: profile)
    return profile


class TestSweepCommand:
    def test_nodes_sweep_renders(self, tiny_profile, capsys):
        assert main(["sweep", "nodes"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2(a)" in out and "ggsx" in out

    def test_sweep_with_plot(self, tiny_profile, capsys):
        assert main(["sweep", "nodes", "--plot"]) == 0
        assert "log-y" in capsys.readouterr().out

    def test_sweep_writes_outputs(self, tiny_profile, tmp_path, capsys):
        out_dir = tmp_path / "results"
        json_path = tmp_path / "sweep.json"
        code = main(
            ["sweep", "graphs", "--out", str(out_dir), "--json", str(json_path)]
        )
        assert code == 0
        assert (out_dir / "fig6_graphs.txt").exists()
        assert json_path.exists()

    def test_sweep_then_report_roundtrip(self, tiny_profile, tmp_path, capsys):
        json_path = tmp_path / "sweep.json"
        main(["sweep", "nodes", "--json", str(json_path)])
        capsys.readouterr()  # discard sweep output
        assert main(["report", str(json_path), "--figure", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2(c)" in out

    def test_real_sweep_includes_table1(self, tiny_profile, capsys):
        assert main(["sweep", "real"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "PCM" in out


class TestSweepEngineFlags:
    """--jobs/--shared-mem/--batch-queries and multi-experiment pooling."""

    def test_engine_flags_match_sequential_run(self, tiny_profile, tmp_path, capsys):
        from repro.core.serialization import canonical_json, load_sweep

        seq_path = tmp_path / "seq.json"
        eng_path = tmp_path / "eng.json"
        assert main(["sweep", "nodes", "--json", str(seq_path)]) == 0
        assert main(
            ["sweep", "nodes", "--jobs", "2", "--shared-mem",
             "--batch-queries", "--json", str(eng_path)]
        ) == 0
        sequential = load_sweep(seq_path)
        engined = load_sweep(eng_path)
        assert canonical_json(engined) == canonical_json(sequential)

    def test_multiple_experiments_share_invocation(self, tiny_profile, tmp_path, capsys):
        json_path = tmp_path / "multi.json"
        code = main(
            ["sweep", "nodes", "graphs", "--jobs", "2", "--shared-mem",
             "--batch-queries", "--json", str(json_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "running nodes sweep" in out and "running graphs sweep" in out
        assert "shared-mem" in out and "batched queries" in out
        assert (tmp_path / "multi-nodes.json").exists()
        assert (tmp_path / "multi-graphs.json").exists()

    def test_no_arena_leaks_after_sweep_command(self, tiny_profile, capsys):
        from repro.core.arena import live_arenas

        assert main(["sweep", "nodes", "--jobs", "2", "--shared-mem"]) == 0
        assert live_arenas() == ()
